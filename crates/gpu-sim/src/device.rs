//! The simulated device: memory accounting, transfers, and the response-time
//! ledger.

use crate::config::DeviceConfig;
use crate::launch::{run_launch, run_launch_persistent, run_launch_warps, LaunchReport, Warp};
use crate::ledger::{Phase, ResponseTime};
use crate::memory::{
    ColumnarBuffer, DeviceBuffer, OutOfDeviceMemory, PartitionedScratch, Reservation, ResultBuffer,
};
use crate::sanitizer::{short_type_name, Sanitizer, SanitizerMode, SanitizerReport};
use crate::workqueue::{Tile, WorkQueue};
use crate::Lane;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A simulated GPU.
///
/// All allocation, transfer, and launch operations go through the device,
/// which keeps simulated-memory accounting and the [`ResponseTime`] ledger.
///
/// ```
/// use tdts_gpu_sim::{Device, DeviceConfig};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let device = Device::new(DeviceConfig::tesla_c2075()).unwrap();
/// let data = device.alloc_from_host((0..1024u64).collect()).unwrap();
///
/// // A kernel summing the buffer: one thread per element.
/// let sum = AtomicU64::new(0);
/// let report = device.launch(data.len(), |lane| {
///     let v = data.read(lane, lane.global_id); // charges the memory counter
///     lane.instr(1);
///     sum.fetch_add(v, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 1024 * 1023 / 2);
/// assert_eq!(report.warps, 1024 / 32);
/// assert!(report.sim_exec_seconds > 0.0); // deterministic simulated time
/// ```
/// Two families of operations exist:
///
/// * **Offline** ([`Device::alloc_from_host`]) — used while building indexes
///   and storing the database `D`; the paper excludes these from response
///   time, so no ledger entry is made.
/// * **Online** ([`Device::upload`], [`Device::charge_download`],
///   [`Device::launch`], [`Device::charge_host`]) — everything between query
///   arrival and the final result set; each records its simulated duration.
pub struct Device {
    config: DeviceConfig,
    mem_used: AtomicUsize,
    ledger: Mutex<ResponseTime>,
    /// Shadow-state sanitizer; `None` under [`SanitizerMode::Off`], so the
    /// disabled mode allocates nothing and the hot paths skip one pointer
    /// check at most.
    sanitizer: Option<Arc<Sanitizer>>,
}

impl Device {
    /// Create a device, validating the configuration.
    pub fn new(config: DeviceConfig) -> Result<Arc<Device>, String> {
        config.validate()?;
        let sanitizer =
            (!config.sanitizer.is_off()).then(|| Arc::new(Sanitizer::new(config.sanitizer)));
        Ok(Arc::new(Device {
            config,
            mem_used: AtomicUsize::new(0),
            ledger: Mutex::new(ResponseTime::new()),
            sanitizer,
        }))
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The shadow-state sanitizer, when one is active.
    pub(crate) fn sanitizer_ref(&self) -> Option<&Arc<Sanitizer>> {
        self.sanitizer.as_ref()
    }

    /// The sanitizer mode this device runs under.
    pub fn sanitizer_mode(&self) -> SanitizerMode {
        self.config.sanitizer
    }

    /// Snapshot of everything the sanitizer observed so far. Reports an
    /// empty clean report under [`SanitizerMode::Off`].
    pub fn sanitizer_report(&self) -> SanitizerReport {
        match &self.sanitizer {
            Some(san) => san.report(),
            None => SanitizerReport {
                mode: SanitizerMode::Off,
                launches: 0,
                findings: Vec::new(),
                live_allocations: Vec::new(),
                d2h_charged_bytes: 0,
                d2h_drained_bytes: 0,
            },
        }
    }

    /// Materialize deferred diagnostics (unacknowledged lost records,
    /// transfer mismatches) and return the number of findings recorded since
    /// the previous checkpoint. Search epilogues call this once per search
    /// and store the delta on `SearchReport::sanitizer_findings`, so merged
    /// reports sum correctly.
    pub fn sanitizer_checkpoint(&self) -> u64 {
        self.sanitizer.as_ref().map_or(0, |san| san.checkpoint())
    }

    /// Panic with the full diagnostic listing if the sanitizer recorded any
    /// finding. The hard-failure entry point for tests.
    pub fn assert_sanitizer_clean(&self) {
        let report = self.sanitizer_report();
        assert!(report.is_clean(), "sanitizer found defects:\n{report}");
    }

    /// Bytes of simulated global memory currently allocated.
    pub fn mem_used(&self) -> usize {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// Bytes of simulated global memory still free.
    pub fn mem_available(&self) -> usize {
        self.config.global_mem_bytes - self.mem_used()
    }

    pub(crate) fn reserve(&self, bytes: usize) -> Result<(), OutOfDeviceMemory> {
        let mut used = self.mem_used.load(Ordering::Relaxed);
        loop {
            let available = self.config.global_mem_bytes.saturating_sub(used);
            if bytes > available {
                return Err(OutOfDeviceMemory { requested: bytes, available });
            }
            match self.mem_used.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => used = actual,
            }
        }
    }

    pub(crate) fn release(&self, bytes: usize) {
        self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Allocate a read-only device buffer *offline* (no ledger entry).
    /// Used for the database `D` and index structures, which the paper
    /// stores on the GPU before the search begins.
    pub fn alloc_from_host<T: Copy>(
        self: &Arc<Self>,
        data: Vec<T>,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        let bytes = data.len() * std::mem::size_of::<T>();
        let reservation =
            Reservation::new(self, bytes, "DeviceBuffer", short_type_name::<T>(), data.len())?;
        Ok(DeviceBuffer::new(data, reservation))
    }

    /// Allocate and transfer a buffer *online*, charging the host→device
    /// transfer to the ledger. Used for query sets, schedules, redo lists.
    pub fn upload<T: Copy>(
        self: &Arc<Self>,
        data: Vec<T>,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        let bytes = data.len() * std::mem::size_of::<T>();
        {
            let mut ledger = self.ledger.lock();
            ledger.add(Phase::HostToDevice, self.config.h2d_seconds(bytes));
            ledger.h2d_bytes += bytes as u64;
        }
        self.alloc_from_host(data)
    }

    /// Allocate a columnar (struct-of-arrays) buffer *offline* (no ledger
    /// entry): one device column per input slice, all of equal length. Used
    /// for the database `D` under
    /// [`crate::config::SegmentLayout::Columnar`].
    pub fn alloc_columns<T: Copy>(
        self: &Arc<Self>,
        columns: &[&[T]],
    ) -> Result<ColumnarBuffer<T>, OutOfDeviceMemory> {
        let bytes = columns.iter().map(|c| std::mem::size_of_val(*c)).sum();
        let len = columns.iter().map(|c| c.len()).sum();
        let reservation =
            Reservation::new(self, bytes, "ColumnarBuffer", short_type_name::<T>(), len)?;
        Ok(ColumnarBuffer::new(columns.iter().map(|c| c.to_vec()).collect(), reservation))
    }

    /// Allocate and transfer a columnar buffer *online*, charging one
    /// host→device transfer of the combined column bytes to the ledger.
    /// Used for query sets under the columnar layout — note this is
    /// `num_columns * 8` bytes per segment, not `size_of::<Segment>()`:
    /// ids stay on the host.
    pub fn upload_columns<T: Copy>(
        self: &Arc<Self>,
        columns: &[&[T]],
    ) -> Result<ColumnarBuffer<T>, OutOfDeviceMemory> {
        let bytes: usize = columns.iter().map(|c| std::mem::size_of_val(*c)).sum();
        {
            let mut ledger = self.ledger.lock();
            ledger.add(Phase::HostToDevice, self.config.h2d_seconds(bytes));
            ledger.h2d_bytes += bytes as u64;
        }
        self.alloc_columns(columns)
    }

    /// Allocate a fixed-capacity atomic-append result buffer (offline — the
    /// paper pre-allocates the result buffer before searching).
    pub fn alloc_result<T>(
        self: &Arc<Self>,
        capacity: usize,
    ) -> Result<ResultBuffer<T>, OutOfDeviceMemory> {
        let bytes = capacity * std::mem::size_of::<T>();
        let reservation =
            Reservation::new(self, bytes, "ResultBuffer", short_type_name::<T>(), capacity)?;
        Ok(ResultBuffer::with_capacity(
            capacity,
            self.config.result_write_mode,
            self.config.warp_stash_capacity,
            reservation,
        ))
    }

    /// Allocate a scatter buffer (offline): kernels write at explicit,
    /// disjoint indices computed from a host-side prefix sum — the two-pass
    /// alternative to atomic result appends.
    pub fn alloc_scatter<T>(
        self: &Arc<Self>,
        capacity: usize,
    ) -> Result<crate::memory::ScatterBuffer<T>, OutOfDeviceMemory> {
        let bytes = capacity * std::mem::size_of::<T>();
        let reservation =
            Reservation::new(self, bytes, "ScatterBuffer", short_type_name::<T>(), capacity)?;
        Ok(crate::memory::ScatterBuffer::with_capacity(
            capacity,
            self.config.result_write_mode,
            reservation,
        ))
    }

    /// Allocate per-thread scratch partitions (offline): `partitions` areas
    /// of `per_thread` elements each — the paper's buffer `U` split as
    /// `|U_k| = s/|Q|`.
    pub fn alloc_scratch<T: Copy + Default>(
        self: &Arc<Self>,
        partitions: usize,
        per_thread: usize,
    ) -> Result<PartitionedScratch<T>, OutOfDeviceMemory> {
        let bytes = partitions * per_thread * std::mem::size_of::<T>();
        let reservation = Reservation::new(
            self,
            bytes,
            "PartitionedScratch",
            short_type_name::<T>(),
            partitions * per_thread,
        )?;
        Ok(PartitionedScratch::new(
            partitions,
            per_thread,
            self.config.result_write_mode,
            reservation,
        ))
    }

    /// Launch a kernel over `threads` GPU threads and charge launch overhead
    /// plus simulated execution time to the ledger.
    ///
    /// The kernel closure runs once per thread (in parallel over warps on the
    /// host thread pool) and records its costs on the [`Lane`].
    pub fn launch<K>(&self, threads: usize, kernel: K) -> LaunchReport
    where
        K: Fn(&mut Lane) + Sync,
    {
        let report = run_launch(&self.config, self.sanitizer.as_deref(), threads, &kernel);
        self.charge_launch(&report);
        report
    }

    /// Launch a warp-scoped kernel: the closure receives each [`Warp`] and
    /// drives its lanes via [`Warp::for_each_lane`], then may run a per-warp
    /// epilogue (e.g. committing a [`crate::memory::WarpStash`]) whose costs
    /// are charged at converged rates. Ledger accounting matches
    /// [`Device::launch`].
    pub fn launch_warps<K>(&self, threads: usize, kernel: K) -> LaunchReport
    where
        K: Fn(&mut Warp) + Sync,
    {
        let report = run_launch_warps(&self.config, self.sanitizer.as_deref(), threads, &kernel);
        self.charge_launch(&report);
        report
    }

    /// Upload a tile list *online* (charged as a host→device transfer) and
    /// wrap it in a [`WorkQueue`] for [`Device::launch_persistent`].
    pub fn work_queue(
        self: &Arc<Self>,
        mut tiles: Vec<Tile>,
    ) -> Result<WorkQueue, OutOfDeviceMemory> {
        if let Some(san) = &self.sanitizer {
            crate::workqueue::validate_tiles(san, &mut tiles);
        }
        Ok(WorkQueue::new(self.upload(tiles)?))
    }

    /// Launch a persistent warp-per-tile kernel: a fixed grid of
    /// [`crate::DeviceConfig::persistent_warps`] warps (capped by the tile
    /// count) loops pulling tiles from `queue` until it drains, invoking the
    /// kernel once per (warp, tile). Each grab costs one global atomic plus
    /// a converged tile-descriptor read; ledger accounting matches
    /// [`Device::launch`].
    pub fn launch_persistent<K>(&self, queue: &WorkQueue, kernel: K) -> LaunchReport
    where
        K: Fn(&mut Warp, Tile) + Sync,
    {
        let report = run_launch_persistent(&self.config, self.sanitizer.as_deref(), queue, &kernel);
        self.charge_launch(&report);
        report
    }

    fn charge_launch(&self, report: &LaunchReport) {
        let mut ledger = self.ledger.lock();
        ledger.add(Phase::KernelLaunch, report.launch_overhead_seconds);
        ledger.add(Phase::KernelExec, report.sim_exec_seconds);
        ledger.kernel_invocations += 1;
    }

    /// Charge a device→host transfer of `bytes` (draining result buffers,
    /// reading back redo queues).
    pub fn charge_download(&self, bytes: usize) {
        {
            let mut ledger = self.ledger.lock();
            ledger.add(Phase::DeviceToHost, self.config.d2h_seconds(bytes));
            ledger.d2h_bytes += bytes as u64;
        }
        if let Some(san) = &self.sanitizer {
            san.note_d2h_charged(bytes as u64);
        }
    }

    /// Charge host-side computation time (schedule construction, sorting,
    /// duplicate filtering). The engine measures these with a wall clock and
    /// records them here so the total response time includes them.
    pub fn charge_host(&self, seconds: f64) {
        self.ledger.lock().add(Phase::HostCompute, seconds);
    }

    /// Snapshot of the response-time ledger.
    pub fn ledger(&self) -> ResponseTime {
        *self.ledger.lock()
    }

    /// Reset the ledger (start of a new timed search).
    pub fn reset_ledger(&self) {
        *self.ledger.lock() = ResponseTime::new();
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("config", &self.config.name)
            .field("mem_used", &self.mem_used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Arc<Device> {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn rejects_invalid_config() {
        let mut c = DeviceConfig::test_tiny();
        c.warp_size = 0;
        assert!(Device::new(c).is_err());
    }

    #[test]
    fn offline_alloc_not_charged() {
        let dev = tiny();
        let _d = dev.alloc_from_host(vec![0u8; 1000]).unwrap();
        assert_eq!(dev.ledger().total(), 0.0);
    }

    #[test]
    fn upload_charges_h2d() {
        let dev = tiny();
        let _q = dev.upload(vec![0u8; 1000]).unwrap();
        let t = dev.ledger().get(Phase::HostToDevice);
        // latency 1e-3 + 1000/1e6 = 2e-3
        assert!((t - 2e-3).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn column_upload_charges_combined_bytes() {
        let dev = tiny();
        // Offline columnar alloc: no ledger entry.
        let _d = dev.alloc_columns(&[&[0.0f64; 10][..]; 8]).unwrap();
        assert_eq!(dev.ledger().total(), 0.0);
        // Online: 8 columns x 10 rows x 8 bytes = 640 bytes, one transfer.
        let _q = dev.upload_columns(&[&[0.0f64; 10][..]; 8]).unwrap();
        let t = dev.ledger().get(Phase::HostToDevice);
        assert!((t - (1e-3 + 640.0 / 1e6)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn download_and_host_charges() {
        let dev = tiny();
        dev.charge_download(500_000);
        dev.charge_host(0.25);
        let l = dev.ledger();
        assert!((l.get(Phase::DeviceToHost) - 0.501).abs() < 1e-9);
        assert_eq!(l.get(Phase::HostCompute), 0.25);
        dev.reset_ledger();
        assert_eq!(dev.ledger().total(), 0.0);
    }

    #[test]
    fn launch_counts_invocations() {
        let dev = tiny();
        dev.launch(8, |lane| {
            lane.instr(1);
        });
        dev.launch(8, |lane| {
            lane.instr(1);
        });
        let l = dev.ledger();
        assert_eq!(l.kernel_invocations, 2);
        assert!(l.get(Phase::KernelLaunch) > 0.0);
        assert!(l.get(Phase::KernelExec) > 0.0);
    }

    #[test]
    fn memory_accounting_is_exact() {
        let dev = tiny();
        let a = dev.alloc_from_host(vec![0u64; 100]).unwrap();
        assert_eq!(dev.mem_used(), 800);
        let b = dev.alloc_result::<u32>(50).unwrap();
        assert_eq!(dev.mem_used(), 1000);
        drop(a);
        assert_eq!(dev.mem_used(), 200);
        drop(b);
        assert_eq!(dev.mem_used(), 0);
        assert_eq!(dev.mem_available(), 1024 * 1024);
    }
}
