//! The host-side redo protocol: which queries to re-run after a kernel
//! round whose buffers overflowed.
//!
//! The paper re-invokes the kernel with the overflowed queries; because
//! buffer space per query is `total / batch`, re-invocations with fewer
//! queries get more space. When *no* query completed in a round, re-running
//! the same batch would make no progress (same per-query space, same result
//! volume), so the scheduler halves the batch instead — deferring the rest —
//! until either progress resumes or a single query alone cannot fit, which
//! is a hard capacity error.

use std::collections::VecDeque;

/// Decision after a kernel round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextBatch {
    /// All queries completed: the search is finished.
    Done,
    /// Run these query ids next.
    Ids(Vec<u32>),
    /// A single query cannot complete with the configured buffers.
    Stuck,
}

/// Tracks queries awaiting re-execution and sizes the next batch.
#[derive(Debug, Default)]
pub struct RedoSchedule {
    queue: VecDeque<u32>,
}

impl RedoSchedule {
    /// Empty schedule; the first round (all queries) is launched by the
    /// caller before consulting the schedule.
    pub fn new() -> RedoSchedule {
        RedoSchedule::default()
    }

    /// Queries currently waiting (excluding any in-flight batch).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Record a finished round: `redo` lists the queries that overflowed out
    /// of a batch of `batch_len`, and the return value says what to run
    /// next.
    pub fn next(&mut self, redo: Vec<u32>, batch_len: usize) -> NextBatch {
        assert!(redo.len() <= batch_len, "more redo ids than launched threads");
        let no_progress = !redo.is_empty() && redo.len() == batch_len;
        self.queue.extend(redo);
        if self.queue.is_empty() {
            return NextBatch::Done;
        }
        let take = if no_progress {
            if batch_len == 1 {
                return NextBatch::Stuck;
            }
            // Halve the batch so each query gets more buffer space and the
            // round produces fewer results.
            (batch_len / 2).max(1)
        } else {
            self.queue.len()
        };
        NextBatch::Ids(self.queue.drain(..take.min(self.queue.len())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_done_immediately() {
        let mut s = RedoSchedule::new();
        assert_eq!(s.next(vec![], 100), NextBatch::Done);
    }

    #[test]
    fn partial_redo_runs_all_remaining() {
        let mut s = RedoSchedule::new();
        match s.next(vec![3, 7, 9], 100) {
            NextBatch::Ids(ids) => assert_eq!(ids, vec![3, 7, 9]),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.pending(), 0);
        assert_eq!(s.next(vec![], 3), NextBatch::Done);
    }

    #[test]
    fn no_progress_halves_and_defers() {
        let mut s = RedoSchedule::new();
        // 8 queries launched, all 8 redo → run 4, keep 4 queued.
        match s.next((0..8).collect(), 8) {
            NextBatch::Ids(ids) => assert_eq!(ids.len(), 4),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.pending(), 4);
        // Those 4 all redo again → run 2.
        match s.next((0..4).collect(), 4) {
            NextBatch::Ids(ids) => assert_eq!(ids.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.pending(), 6);
    }

    #[test]
    fn single_query_stuck() {
        let mut s = RedoSchedule::new();
        assert_eq!(s.next(vec![5], 1), NextBatch::Stuck);
    }

    #[test]
    fn progress_resumes_full_queue() {
        let mut s = RedoSchedule::new();
        // No progress on 4 → run 2 (2 deferred).
        let _ = s.next(vec![0, 1, 2, 3], 4);
        // Those 2 complete → run the 2 deferred.
        match s.next(vec![], 2) {
            NextBatch::Ids(ids) => assert_eq!(ids.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.next(vec![], 2), NextBatch::Done);
    }

    #[test]
    fn terminates_under_worst_case() {
        // Adversarial: every round redoes everything until batch = 1, then
        // the single query completes. Must terminate.
        let mut s = RedoSchedule::new();
        let mut batch: Vec<u32> = (0..64).collect();
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 1_000, "runaway");
            // Nothing completes except single-query batches.
            let redo = if batch.len() == 1 { vec![] } else { batch.clone() };
            match s.next(redo, batch.len()) {
                NextBatch::Done => break,
                NextBatch::Ids(ids) => batch = ids,
                NextBatch::Stuck => panic!("unexpected stuck"),
            }
        }
    }
}
