//! Device-side work queue for persistent-warp launches.
//!
//! The paper's kernels map one thread to one query (§IV-B/C), so a warp's
//! cost is the maximum over 32 arbitrarily different candidate-range
//! lengths. The work queue replaces that static mapping with dynamic
//! dispatch: the host splits every candidate range into [`Tile`]s of at
//! most [`crate::DeviceConfig::tile_size`] entries, uploads them, and a
//! persistent grid of warps ([`crate::Device::launch_persistent`]) loops
//! grabbing tiles off a single global atomic cursor until the queue is
//! empty.
//!
//! The cost model charges **one global atomic per grab** (plus one
//! converged 16-byte tile read). That is the faithful price of the
//! canonical CUDA persistent-kernel idiom — the warp leader performs
//! `atomicAdd(&cursor, 1)` and broadcasts the tile index via
//! `__shfl_sync` — and it is why tiles, not individual candidates, are the
//! dispatch unit: the atomic's cost is amortised over `tile_size`
//! candidate comparisons instead of being paid per entry.

use crate::memory::DeviceBuffer;
use crate::sanitizer::Sanitizer;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Memcheck pass over a host-built tile list before upload: a tile with
/// `hi < lo` would underflow [`Tile::len`] and drive a kernel through a
/// 4-billion-entry range. Each malformed tile is recorded as a
/// [`crate::FindingKind::MalformedTile`] finding and neutralised by
/// clamping `hi` to `lo` (an empty tile), so one run surfaces every bad
/// tile instead of crashing on the first.
pub(crate) fn validate_tiles(san: &Sanitizer, tiles: &mut [Tile]) {
    if !san.mode().memcheck() {
        return;
    }
    for (i, t) in tiles.iter_mut().enumerate() {
        if t.hi < t.lo {
            san.note_malformed_tile(i, t.query, t.lo, t.hi);
            t.hi = t.lo;
        }
    }
}

/// One unit of warp-cooperative work: `query` against the candidate
/// positions `lo..hi`. `tag` disambiguates what the range indexes when an
/// index has several candidate arrays (GPUSpatioTemporal stores the X/Y/Z
/// selector or the temporal-fallback marker here); single-array schemes
/// leave it 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// Query index this tile belongs to.
    pub query: u32,
    /// First candidate position (inclusive).
    pub lo: u32,
    /// Last candidate position (exclusive).
    pub hi: u32,
    /// Scheme-specific interpretation of the range (0 when unused).
    pub tag: u32,
}

impl Tile {
    /// Number of candidate entries in this tile.
    #[inline]
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the tile covers no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Append tiles covering `lo..hi` for `query` in chunks of at most
    /// `tile_size` entries. Appends nothing for an empty range.
    pub fn split_into(
        out: &mut Vec<Tile>,
        query: u32,
        lo: u32,
        hi: u32,
        tag: u32,
        tile_size: usize,
    ) {
        debug_assert!(tile_size >= 1);
        debug_assert!(lo <= hi);
        let mut start = lo;
        while start < hi {
            let end = hi.min(start.saturating_add(tile_size as u32));
            out.push(Tile { query, lo: start, hi: end, tag });
            start = end;
        }
    }
}

/// A queue of [`Tile`]s in device memory behind one global atomic cursor.
///
/// Created via [`crate::Device::work_queue`] (which charges the tile
/// upload as a host→device transfer) and consumed by a single
/// [`crate::Device::launch_persistent`], which charges every cursor probe
/// — one per dispatched tile plus the failed probe each persistent warp
/// pays to discover the queue is empty — as a global atomic.
#[derive(Debug)]
pub struct WorkQueue {
    tiles: DeviceBuffer<Tile>,
    cursor: AtomicUsize,
}

impl WorkQueue {
    pub(crate) fn new(tiles: DeviceBuffer<Tile>) -> Self {
        WorkQueue { tiles, cursor: AtomicUsize::new(0) }
    }

    /// Total tiles enqueued.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the queue was created empty.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The tile at queue position `i` (after any sanitizer clamping).
    pub fn tile_at(&self, i: usize) -> Tile {
        self.tiles.as_slice()[i]
    }

    /// Record a completed persistent launch by `warps` warps: the cursor
    /// ends at `len + warps` (every tile grabbed once, plus one failed
    /// probe per warp).
    pub(crate) fn mark_drained(&self, warps: usize) {
        self.cursor.store(self.len() + warps, Ordering::Relaxed);
    }

    /// Tiles handed out so far (clamped to [`WorkQueue::len`]; failed
    /// probes past the end do not count).
    pub fn dispatched(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.len())
    }

    /// Total cursor probes so far: successful grabs plus the failed probe
    /// each persistent warp pays to discover the queue is empty.
    pub fn probes(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig};
    use std::sync::Arc;

    fn tiny() -> Arc<Device> {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn split_covers_range_exactly_once() {
        let mut tiles = Vec::new();
        Tile::split_into(&mut tiles, 7, 10, 35, 2, 8);
        assert_eq!(tiles.len(), 4); // 8 + 8 + 8 + 1
        let mut pos = 10;
        for t in &tiles {
            assert_eq!(t.query, 7);
            assert_eq!(t.tag, 2);
            assert_eq!(t.lo, pos);
            assert!(t.len() <= 8 && !t.is_empty());
            pos = t.hi;
        }
        assert_eq!(pos, 35);
    }

    #[test]
    fn split_empty_range_appends_nothing() {
        let mut tiles = Vec::new();
        Tile::split_into(&mut tiles, 0, 5, 5, 0, 8);
        assert!(tiles.is_empty());
    }

    #[test]
    fn drained_queue_reports_grabs_and_failed_probes() {
        let dev = tiny();
        let mut tiles = Vec::new();
        Tile::split_into(&mut tiles, 0, 0, 20, 0, 4);
        let queue = dev.work_queue(tiles.clone()).unwrap();
        assert_eq!(queue.len(), 5);
        assert_eq!(queue.dispatched(), 0);
        let got: Vec<Tile> = (0..queue.len()).map(|i| queue.tile_at(i)).collect();
        assert_eq!(got, tiles);
        // A persistent launch by 2 warps: every tile grabbed once, plus one
        // failed probe per warp — the probes bump the cursor past the end
        // but never count as dispatched tiles.
        queue.mark_drained(2);
        assert_eq!(queue.dispatched(), 5);
        assert_eq!(queue.probes(), 7);
    }

    #[test]
    fn work_queue_upload_is_charged() {
        let dev = tiny();
        let before = dev.ledger().get(crate::Phase::HostToDevice);
        let _q = dev.work_queue(vec![Tile { query: 0, lo: 0, hi: 4, tag: 0 }; 10]).unwrap();
        assert!(dev.ledger().get(crate::Phase::HostToDevice) > before);
        assert_eq!(dev.mem_used(), 10 * std::mem::size_of::<Tile>());
    }
}
