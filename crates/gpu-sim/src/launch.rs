//! Kernel launch machinery and the SIMT cost model.
//!
//! # Execution
//!
//! A launch of `n` threads is partitioned into warps of
//! [`DeviceConfig::warp_size`] consecutive global ids. Warps execute in
//! parallel on the host's rayon thread pool; within a warp, lanes run
//! sequentially (their *results* are identical to lock-step execution
//! because lanes only communicate through device atomics).
//!
//! # Cost model
//!
//! For each warp, with `k` = number of distinct control-path tags among its
//! lanes (see [`Lane::set_path`]):
//!
//! ```text
//! alu_cycles   = k * max_over_lanes(instructions) * cycles_per_instr
//! mem_cycles   = ceil(sum_bytes / gmem_transaction_bytes)
//!                  * cycles_per_gmem_transaction
//!                  * (uncoalesced_factor if k > 1 else 1)
//! atom_cycles  = sum_over_lanes(atomics) * cycles_per_atomic
//! warp_cycles  = alu_cycles + mem_cycles + atom_cycles
//! ```
//!
//! The `k` multiplier models serialisation of divergent paths; atomics use
//! the *sum* because contended atomics to shared cursors serialise across
//! lanes. Warps are assigned round-robin to SMs; an SM's cycles are the sum
//! of its warps' cycles divided by the occupancy (latency-hiding) factor, and
//! the kernel's execution time is the maximum over SMs divided by the clock.
//! Every quantity is a deterministic function of the recorded counters.
//!
//! # Warp-scoped launches
//!
//! [`crate::Device::launch_warps`] hands the kernel a whole [`Warp`] instead
//! of individual lanes, so kernels can run a *per-warp epilogue* after the
//! lane loop — the simulated analogue of warp-level primitives
//! (`__ballot_sync`/`__shfl_sync` + a leader `atomicAdd`). Costs recorded on
//! the warp itself (via [`Warp::instr`] etc.) are charged *converged*: no
//! divergence multiplier on instructions and no uncoalesced factor on memory
//! traffic, because all lanes execute the epilogue together and commit
//! writes are contiguous.

use crate::config::DeviceConfig;
use crate::counters::{Counters, Lane};
use crate::sanitizer::Sanitizer;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Kernel-shape label of static-grid launches in sanitizer findings.
pub(crate) const SHAPE_STATIC: &str = "static-grid";
/// Kernel-shape label of persistent work-queue launches.
pub(crate) const SHAPE_PERSISTENT: &str = "persistent-warp-per-tile";

/// Maximum lanes per warp supported by the simulator: warp-aggregated
/// commits track per-lane drop bits in a `u64` mask
/// (see [`crate::memory::WarpStash`]).
pub const MAX_WARP_LANES: usize = 64;

/// Execution context for one warp, handed to kernels launched via
/// [`crate::Device::launch_warps`].
///
/// Lane work happens inside [`Warp::for_each_lane`]; anything recorded on
/// the warp afterwards (the epilogue) is charged at converged-execution
/// rates — see the module docs.
#[derive(Debug)]
pub struct Warp {
    index: usize,
    lanes: Vec<Lane>,
    counters: Counters,
}

impl Warp {
    pub(crate) fn with_lanes(index: usize, lanes: Vec<Lane>) -> Self {
        debug_assert!(lanes.len() <= MAX_WARP_LANES);
        Warp { index, lanes, counters: Counters::default() }
    }

    /// A detached warp of `lane_count` fresh lanes (global ids `0..count`).
    /// Kernels receive warps from the launch machinery; this constructor
    /// exists so warp-scoped helpers can be unit tested without a launch.
    pub fn standalone(lane_count: usize) -> Self {
        assert!((1..=MAX_WARP_LANES).contains(&lane_count));
        Warp::with_lanes(0, (0..lane_count).map(|gid| Lane::at(gid, gid)).collect())
    }

    /// Index of this warp within the launch.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of lanes in this warp (the trailing warp of a launch may be
    /// partial).
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Run `f` once per lane, in lane order. May be called repeatedly; the
    /// lanes keep accumulating onto the same counters.
    pub fn for_each_lane(&mut self, mut f: impl FnMut(&mut Lane)) {
        for lane in &mut self.lanes {
            f(lane);
        }
    }

    /// Record `n` converged ALU instructions (executed by the warp as one).
    #[inline]
    pub fn instr(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// Record a coalesced global-memory read of `bytes` by the warp.
    #[inline]
    pub fn gmem_read(&mut self, bytes: u64) {
        self.counters.gmem_read_bytes += bytes;
    }

    /// Record a coalesced global-memory write of `bytes` by the warp.
    #[inline]
    pub fn gmem_write(&mut self, bytes: u64) {
        self.counters.gmem_write_bytes += bytes;
    }

    /// Record `n` global atomic operations issued by the warp leader.
    #[inline]
    pub fn atomics(&mut self, n: u64) {
        self.counters.atomics += n;
    }

    /// Warp-scoped counters recorded so far (for tests).
    #[inline]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

/// Cost summary of one warp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct WarpCost {
    pub cycles: f64,
    pub divergent: bool,
    pub totals: Counters,
}

/// Report returned by [`crate::Device::launch`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchReport {
    /// Number of GPU threads launched.
    pub threads: usize,
    /// Number of warps executed.
    pub warps: usize,
    /// Warps whose lanes took more than one control path.
    pub divergent_warps: usize,
    /// Counters summed over all lanes.
    pub totals: Counters,
    /// Simulated kernel execution time in seconds.
    pub sim_exec_seconds: f64,
    /// Fixed launch overhead in seconds.
    pub launch_overhead_seconds: f64,
    /// Host wall-clock time actually spent executing the kernel closures.
    pub wall_seconds: f64,
    /// Cycles of the most expensive warp (for persistent launches, a warp's
    /// cycles are summed over every tile it processed).
    pub max_warp_cycles: f64,
    /// Mean cycles per warp. `max / mean` is the load-imbalance spread: 1.0
    /// is perfectly balanced, and under the one-thread-per-query mapping it
    /// grows with the skew of per-query candidate-range lengths.
    pub mean_warp_cycles: f64,
    /// Fraction of SMs still busy in the launch's final round-robin wave
    /// (1.0 when the warp count divides the SM count evenly — persistent
    /// grids are sized so this always holds).
    pub last_wave_occupancy: f64,
    /// Tiles dispatched from the work queue (0 for static launches).
    pub tiles_dispatched: u64,
    /// Work-queue cursor atomics: one per dispatched tile plus one failed
    /// probe per persistent warp (0 for static launches).
    pub queue_atomics: u64,
}

impl LaunchReport {
    /// Execution plus launch overhead.
    pub fn sim_total_seconds(&self) -> f64 {
        self.sim_exec_seconds + self.launch_overhead_seconds
    }
}

/// Compute the simulated cost of one warp from its lanes' counters and
/// paths, plus warp-scoped `warp_extra` charges recorded by a per-warp
/// epilogue. The extra charges are converged: no `k` multiplier on
/// instructions, no uncoalesced factor on memory bytes.
pub(crate) fn warp_cost(
    config: &DeviceConfig,
    lanes: &[(Counters, u64)],
    warp_extra: &Counters,
) -> WarpCost {
    debug_assert!(!lanes.is_empty());
    let mut max = Counters::default();
    let mut totals = Counters::default();
    for (c, _) in lanes {
        max = max.max(c);
        totals.add(c);
    }
    // Count distinct path tags (warp sizes are small; O(k^2) is fine and
    // avoids allocation).
    let mut distinct: Vec<u64> = Vec::with_capacity(4);
    for (_, p) in lanes {
        if !distinct.contains(p) {
            distinct.push(*p);
        }
    }
    let k = distinct.len() as f64;
    let divergent = distinct.len() > 1;

    let alu =
        (k * max.instructions as f64 + warp_extra.instructions as f64) * config.cycles_per_instr;
    let bytes = (totals.gmem_read_bytes + totals.gmem_write_bytes) as f64;
    let transactions = (bytes / config.gmem_transaction_bytes).ceil();
    let mem_penalty = if divergent { config.uncoalesced_factor } else { 1.0 };
    let extra_bytes = (warp_extra.gmem_read_bytes + warp_extra.gmem_write_bytes) as f64;
    let extra_transactions = (extra_bytes / config.gmem_transaction_bytes).ceil();
    let mem =
        (transactions * mem_penalty + extra_transactions) * config.cycles_per_gmem_transaction;
    let atom = (totals.atomics + warp_extra.atomics) as f64 * config.cycles_per_atomic;

    totals.add(warp_extra);
    WarpCost { cycles: alu + mem + atom, divergent, totals }
}

/// Execute a warp-scoped kernel over `threads` threads and compute the
/// launch report.
pub(crate) fn run_launch_warps<K>(
    config: &DeviceConfig,
    san: Option<&Sanitizer>,
    threads: usize,
    kernel: &K,
) -> LaunchReport
where
    K: Fn(&mut Warp) + Sync,
{
    let warp_size = config.warp_size;
    let warps = threads.div_ceil(warp_size);
    if let Some(san) = san {
        san.begin_launch(SHAPE_STATIC);
    }
    let start = std::time::Instant::now();

    let costs: Vec<WarpCost> = (0..warps)
        .into_par_iter()
        .map(|w| {
            let first = w * warp_size;
            let last = ((w + 1) * warp_size).min(threads);
            let lanes = (first..last).map(|gid| Lane::at(gid, gid - first)).collect();
            let mut warp = Warp::with_lanes(w, lanes);
            kernel(&mut warp);
            let lane_costs: Vec<(Counters, u64)> =
                warp.lanes.iter().map(|l| (l.counters, l.path)).collect();
            warp_cost(config, &lane_costs, &warp.counters)
        })
        .collect();

    let wall_seconds = start.elapsed().as_secs_f64();
    if let Some(san) = san {
        san.end_launch();
    }
    finish_report(config, threads, warps, 0, &costs, wall_seconds, (0, 0))
}

/// Fraction of SMs that still receive a warp in the launch's final
/// round-robin wave.
fn last_wave_occupancy(num_sms: usize, warps: usize) -> f64 {
    if warps == 0 {
        return 0.0;
    }
    let rem = warps % num_sms;
    if rem == 0 {
        1.0
    } else {
        rem as f64 / num_sms as f64
    }
}

/// Shared tail of static and persistent launches: round-robin the per-warp
/// costs onto SMs, aggregate counters, and derive the imbalance metrics.
/// `divergent_extra` carries per-tile divergence events of a persistent
/// launch (whose `costs` are already per-warp sums).
fn finish_report(
    config: &DeviceConfig,
    threads: usize,
    warps: usize,
    divergent_extra: usize,
    costs: &[WarpCost],
    wall_seconds: f64,
    queue: (u64, u64),
) -> LaunchReport {
    // Round-robin warp → SM assignment; SM time = sum of its warps' cycles
    // divided by the occupancy factor.
    let mut sm_cycles = vec![0.0f64; config.num_sms];
    let mut totals = Counters::default();
    let mut divergent_warps = divergent_extra;
    let mut max_warp_cycles = 0.0f64;
    let mut sum_warp_cycles = 0.0f64;
    for (w, cost) in costs.iter().enumerate() {
        sm_cycles[w % config.num_sms] += cost.cycles;
        totals.add(&cost.totals);
        divergent_warps += cost.divergent as usize;
        max_warp_cycles = max_warp_cycles.max(cost.cycles);
        sum_warp_cycles += cost.cycles;
    }
    let max_sm = sm_cycles.iter().cloned().fold(0.0, f64::max);
    let sim_exec_seconds = max_sm / config.occupancy_factor / config.clock_hz;
    let (tiles_dispatched, queue_atomics) = queue;

    LaunchReport {
        threads,
        warps,
        divergent_warps,
        totals,
        sim_exec_seconds,
        launch_overhead_seconds: config.kernel_launch_overhead,
        wall_seconds,
        max_warp_cycles,
        mean_warp_cycles: if warps == 0 { 0.0 } else { sum_warp_cycles / warps as f64 },
        last_wave_occupancy: last_wave_occupancy(config.num_sms, warps),
        tiles_dispatched,
        queue_atomics,
    }
}

/// Execute a warp-cooperative kernel with a persistent grid: the fixed
/// grid of [`DeviceConfig::persistent_warps`] warps (capped by the tile
/// count) loops pulling tiles from `queue` until it drains. Every grab is
/// charged one global atomic plus a converged read of the 16-byte tile
/// descriptor; each warp pays one further atomic for the failed probe that
/// tells it the queue is empty. A warp receives fresh lanes per tile, so
/// the divergence multiplier and the max-over-lanes rule apply *within*
/// each tile, and the warp's cycles are the sum over the tiles it
/// processed — exactly the cost shape of a device-side `while
/// (atomicAdd(&cursor, 1) < n)` loop.
///
/// Host execution and simulated dispatch are decoupled to keep the
/// determinism guarantee: tiles run on the rayon pool in any order (a
/// tile's cost is a function of the tile alone — warp-cooperative kernels
/// address only [`Lane::lane_index`] and the tile, never which persistent
/// warp happened to grab it), then the atomic cursor is replayed
/// deterministically, handing each tile in queue order to the warp that
/// becomes free earliest (ties to the lowest warp index) — which is
/// exactly the assignment lock-step SIMT timing produces for a device-side
/// cursor, and never the host thread scheduler's racing order.
pub(crate) fn run_launch_persistent<K>(
    config: &DeviceConfig,
    san: Option<&Sanitizer>,
    queue: &crate::workqueue::WorkQueue,
    kernel: &K,
) -> LaunchReport
where
    K: Fn(&mut Warp, crate::workqueue::Tile) + Sync,
{
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let warp_size = config.warp_size;
    let n = queue.len();
    let grid = config.persistent_warps().min(n);
    if let Some(san) = san {
        san.begin_launch(SHAPE_PERSISTENT);
    }
    let start = std::time::Instant::now();

    // Phase 1 — execution: every tile runs exactly once, in parallel on
    // the host; per-tile divergence and the max-over-lanes rule are
    // resolved here.
    let tile_costs: Vec<WarpCost> = (0..n)
        .into_par_iter()
        .map(|i| {
            let tile = queue.tile_at(i);
            let lanes = (0..warp_size).map(|l| Lane::at(l, l)).collect();
            let mut warp = Warp::with_lanes(i, lanes);
            // The grab itself: leader's cursor atomicAdd + one converged
            // read of the tile descriptor.
            warp.atomics(1);
            warp.gmem_read(std::mem::size_of::<crate::workqueue::Tile>() as u64);
            kernel(&mut warp, tile);
            let lane_costs: Vec<(Counters, u64)> =
                warp.lanes.iter().map(|l| (l.counters, l.path)).collect();
            warp_cost(config, &lane_costs, &warp.counters)
        })
        .collect();
    queue.mark_drained(grid);
    let wall_seconds = start.elapsed().as_secs_f64();
    if let Some(san) = san {
        san.end_launch();
    }

    // Phase 2 — dispatch replay: tiles go, in queue order, to the
    // earliest-free persistent warp. Cycles are non-negative, so the IEEE
    // bit pattern orders them and keeps the heap key `Ord`.
    let mut free: BinaryHeap<Reverse<(u64, usize)>> =
        (0..grid).map(|w| Reverse((0u64, w))).collect();
    let mut per_warp =
        vec![WarpCost { cycles: 0.0, divergent: false, totals: Counters::default() }; grid];
    let mut divergent_tiles = 0usize;
    for cost in &tile_costs {
        let Reverse((_, w)) = free.pop().expect("grid is non-empty whenever tiles exist");
        per_warp[w].cycles += cost.cycles;
        per_warp[w].totals.add(&cost.totals);
        divergent_tiles += cost.divergent as usize;
        free.push(Reverse((per_warp[w].cycles.to_bits(), w)));
    }
    for wc in &mut per_warp {
        // The failed probe that terminates the persistent loop.
        wc.cycles += config.cycles_per_atomic;
        wc.totals.atomics += 1;
    }

    finish_report(
        config,
        grid * warp_size,
        grid,
        divergent_tiles,
        &per_warp,
        wall_seconds,
        (queue.dispatched() as u64, queue.probes() as u64),
    )
}

/// Execute a lane-scoped kernel over `threads` threads; thin wrapper over
/// [`run_launch_warps`] with no per-warp epilogue.
pub(crate) fn run_launch<K>(
    config: &DeviceConfig,
    san: Option<&Sanitizer>,
    threads: usize,
    kernel: &K,
) -> LaunchReport
where
    K: Fn(&mut Lane) + Sync,
{
    run_launch_warps(config, san, threads, &|warp: &mut Warp| {
        warp.for_each_lane(|lane| kernel(lane))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny() -> std::sync::Arc<Device> {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn every_thread_runs_exactly_once() {
        let dev = tiny();
        let n = 1003; // not a multiple of the warp size
        let sum = AtomicU64::new(0);
        let report = dev.launch(n, |lane| {
            sum.fetch_add(lane.global_id as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(report.threads, n);
        assert_eq!(report.warps, n.div_ceil(4));
        let expect: u64 = (1..=n as u64).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn zero_thread_launch() {
        let dev = tiny();
        let report = dev.launch(0, |_| panic!("must not run"));
        assert_eq!(report.threads, 0);
        assert_eq!(report.warps, 0);
        assert_eq!(report.sim_exec_seconds, 0.0);
        assert!(report.launch_overhead_seconds > 0.0);
    }

    #[test]
    fn exec_time_scales_with_work() {
        let dev = tiny();
        let light = dev.launch(64, |lane| lane.instr(10));
        let heavy = dev.launch(64, |lane| lane.instr(10_000));
        assert!(heavy.sim_exec_seconds > light.sim_exec_seconds * 100.0);
    }

    #[test]
    fn divergence_costs_more() {
        let dev = tiny();
        let uniform = dev.launch(64, |lane| {
            lane.set_path(0);
            lane.instr(1000);
        });
        let divergent = dev.launch(64, |lane| {
            lane.set_path((lane.global_id % 4) as u64);
            lane.instr(1000);
        });
        assert_eq!(uniform.divergent_warps, 0);
        assert_eq!(divergent.divergent_warps, 16);
        // 4 distinct paths per warp => ~4x the ALU cycles.
        assert!(divergent.sim_exec_seconds > uniform.sim_exec_seconds * 3.0);
    }

    #[test]
    fn imbalance_costs_like_the_slowest_lane() {
        // SIMT max-over-lanes: one busy lane in a warp costs as much as all
        // lanes busy.
        let dev = tiny();
        let one_busy = dev.launch(4, |lane| {
            if lane.global_id == 0 {
                lane.instr(10_000);
            }
        });
        let all_busy = dev.launch(4, |lane| {
            let _ = lane.global_id;
            lane.instr(10_000);
        });
        assert!((one_busy.sim_exec_seconds - all_busy.sim_exec_seconds).abs() < 1e-12);
    }

    #[test]
    fn totals_aggregate_all_lanes() {
        let dev = tiny();
        let report = dev.launch(10, |lane| {
            lane.instr(2);
            lane.gmem_read(8);
        });
        assert_eq!(report.totals.instructions, 20);
        assert_eq!(report.totals.gmem_read_bytes, 80);
    }

    #[test]
    fn determinism_across_runs() {
        let dev = tiny();
        let r1 = dev.launch(1000, |lane| {
            lane.instr((lane.global_id % 17) as u64);
            lane.gmem_read((lane.global_id % 5) as u64 * 8);
            lane.set_path((lane.global_id % 3) as u64);
        });
        let r2 = dev.launch(1000, |lane| {
            lane.instr((lane.global_id % 17) as u64);
            lane.gmem_read((lane.global_id % 5) as u64 * 8);
            lane.set_path((lane.global_id % 3) as u64);
        });
        assert_eq!(r1.sim_exec_seconds, r2.sim_exec_seconds);
        assert_eq!(r1.totals, r2.totals);
        assert_eq!(r1.divergent_warps, r2.divergent_warps);
    }

    #[test]
    fn warp_cost_formula() {
        let c = DeviceConfig::test_tiny();
        // Uniform warp: 2 lanes, 10 instr each, 16 bytes read total, 1 atomic.
        let lanes = vec![
            (
                Counters { instructions: 10, gmem_read_bytes: 8, gmem_write_bytes: 0, atomics: 1 },
                0u64,
            ),
            (
                Counters { instructions: 10, gmem_read_bytes: 8, gmem_write_bytes: 0, atomics: 0 },
                0u64,
            ),
        ];
        let cost = warp_cost(&c, &lanes, &Counters::default());
        // alu = 1 * 10 * 1 = 10; mem = ceil(16/16)=1 txn * 10 = 10; atomics = 1*20.
        assert_eq!(cost.cycles, 40.0);
        assert!(!cost.divergent);

        // Divergent version: distinct paths double ALU and apply the
        // uncoalesced factor.
        let lanes_div = vec![(lanes[0].0, 1u64), (lanes[1].0, 2u64)];
        let cost_div = warp_cost(&c, &lanes_div, &Counters::default());
        // alu = 2 * 10 = 20; mem = 1 * 10 * 2 = 20; atomics = 20.
        assert_eq!(cost_div.cycles, 60.0);
        assert!(cost_div.divergent);
    }

    #[test]
    fn warp_extra_charges_are_converged() {
        let c = DeviceConfig::test_tiny();
        let lanes = vec![
            (
                Counters { instructions: 10, gmem_read_bytes: 8, gmem_write_bytes: 0, atomics: 0 },
                1u64,
            ),
            (
                Counters { instructions: 10, gmem_read_bytes: 8, gmem_write_bytes: 0, atomics: 0 },
                2u64,
            ),
        ];
        let extra =
            Counters { instructions: 5, gmem_read_bytes: 0, gmem_write_bytes: 32, atomics: 1 };
        let cost = warp_cost(&c, &lanes, &extra);
        // Divergent lanes: alu = 2*10 + 5 (no k multiplier on extra) = 25;
        // mem = ceil(16/16)*10*2 (uncoalesced) + ceil(32/16)*10 (coalesced
        // commit) = 20 + 20 = 40; atomics = 1 * 20 = 20.
        assert_eq!(cost.cycles, 85.0);
        assert!(cost.divergent);
        // Extra charges appear in the totals.
        assert_eq!(cost.totals.instructions, 25);
        assert_eq!(cost.totals.gmem_write_bytes, 32);
        assert_eq!(cost.totals.atomics, 1);
    }

    #[test]
    fn warp_launch_runs_epilogue_once_per_warp() {
        let dev = tiny();
        let epilogues = AtomicU64::new(0);
        let lanes_run = AtomicU64::new(0);
        let report = dev.launch_warps(10, |warp| {
            warp.for_each_lane(|lane| {
                lane.instr(1);
                lanes_run.fetch_add(1, Ordering::Relaxed);
            });
            warp.atomics(1);
            epilogues.fetch_add(1, Ordering::Relaxed);
        });
        // 10 threads on 4-lane warps: 3 warps, the last partial (2 lanes).
        assert_eq!(report.warps, 3);
        assert_eq!(epilogues.load(Ordering::Relaxed), 3);
        assert_eq!(lanes_run.load(Ordering::Relaxed), 10);
        assert_eq!(report.totals.instructions, 10);
        assert_eq!(report.totals.atomics, 3);
    }

    #[test]
    fn persistent_launch_processes_every_tile_once() {
        use crate::workqueue::Tile;
        use parking_lot::Mutex;
        let dev = tiny();
        let mut tiles = Vec::new();
        for q in 0..7u32 {
            Tile::split_into(&mut tiles, q, 0, 10, 0, dev.config().tile_size);
        }
        let queue = dev.work_queue(tiles.clone()).unwrap();
        let seen = Mutex::new(Vec::new());
        let report = dev.launch_persistent(&queue, |warp, tile| {
            warp.for_each_lane(|lane| lane.instr(1));
            seen.lock().push(tile);
        });
        let mut got = seen.into_inner();
        got.sort_by_key(|t| (t.query, t.lo));
        assert_eq!(got, tiles);
        // Grid capped at persistent_warps (test_tiny: 2 SMs * 1.0 = 2).
        assert_eq!(report.warps, 2);
        assert_eq!(report.threads, 2 * dev.config().warp_size);
        assert_eq!(report.tiles_dispatched, tiles.len() as u64);
        // One atomic per tile + one failed probe per persistent warp.
        assert_eq!(report.queue_atomics, tiles.len() as u64 + 2);
        assert_eq!(report.totals.atomics, report.queue_atomics);
        assert_eq!(report.last_wave_occupancy, 1.0);
        assert!(report.sim_exec_seconds > 0.0);
    }

    #[test]
    fn persistent_launch_with_empty_queue_is_a_noop() {
        let dev = tiny();
        let queue = dev.work_queue(Vec::new()).unwrap();
        let report = dev.launch_persistent(&queue, |_, _| panic!("must not run"));
        assert_eq!(report.warps, 0);
        assert_eq!(report.tiles_dispatched, 0);
        assert_eq!(report.queue_atomics, 0);
        assert_eq!(report.sim_exec_seconds, 0.0);
        assert!(report.launch_overhead_seconds > 0.0);
    }

    #[test]
    fn work_queue_balances_skewed_work() {
        use crate::workqueue::Tile;
        // One heavy range (1024 entries) and 63 light ones (4 entries each):
        // the static per-thread mapping puts the heavy range on one lane of
        // one warp, while tiles of 8 spread it over every persistent warp.
        let lens: Vec<u32> = std::iter::once(1024).chain(std::iter::repeat_n(4, 63)).collect();
        let dev = tiny();

        let static_report = dev.launch(lens.len(), |lane| {
            for _ in 0..lens[lane.global_id] {
                lane.instr(10);
                lane.gmem_read(16);
            }
        });

        let mut tiles = Vec::new();
        for (q, &len) in lens.iter().enumerate() {
            Tile::split_into(&mut tiles, q as u32, 0, len, 0, dev.config().tile_size);
        }
        let queue = dev.work_queue(tiles).unwrap();
        let ws = dev.config().warp_size;
        let wpt_report = dev.launch_persistent(&queue, |warp, tile| {
            warp.for_each_lane(|lane| {
                let mut i = tile.lo as usize + lane.lane_index();
                while i < tile.hi as usize {
                    lane.instr(10);
                    lane.gmem_read(16);
                    i += ws;
                }
            });
        });

        let spread = |r: &LaunchReport| r.max_warp_cycles / r.mean_warp_cycles;
        assert!(
            spread(&wpt_report) * 2.0 < spread(&static_report),
            "expected >=2x spread cut: static {:.2}, wpt {:.2}",
            spread(&static_report),
            spread(&wpt_report)
        );
        assert!(
            wpt_report.sim_exec_seconds < static_report.sim_exec_seconds,
            "wpt {} !< static {}",
            wpt_report.sim_exec_seconds,
            static_report.sim_exec_seconds
        );
    }

    #[test]
    fn lane_indices_match_position_in_warp() {
        let dev = tiny();
        dev.launch_warps(13, |warp| {
            let mut expect = 0usize;
            let base = warp.index() * 4;
            warp.for_each_lane(|lane| {
                assert_eq!(lane.lane_index(), expect);
                assert_eq!(lane.global_id, base + expect);
                expect += 1;
            });
        });
    }
}
