//! Simulated device global memory: read-only buffers, atomic-append result
//! buffers, and per-thread scratch partitions.

use crate::counters::Lane;
use crate::device::Device;
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned when a device allocation exceeds the remaining simulated
/// global memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    pub requested: usize,
    pub available: usize,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Accounting guard: holds the number of bytes reserved on a device and
/// releases them when dropped.
#[derive(Debug)]
pub(crate) struct Reservation {
    device: Arc<Device>,
    bytes: usize,
}

impl Reservation {
    pub(crate) fn new(device: &Arc<Device>, bytes: usize) -> Result<Self, OutOfDeviceMemory> {
        device.reserve(bytes)?;
        Ok(Reservation { device: Arc::clone(device), bytes })
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.device.release(self.bytes);
    }
}

/// A buffer resident in simulated device global memory, read-only from
/// kernels.
///
/// Host-side writes go through [`Device::alloc_from_host`], which charges the
/// host→device transfer to the response-time ledger. Kernel lanes read
/// elements through [`DeviceBuffer::read`], which charges the lane's
/// global-memory counter.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    _reservation: Reservation,
}

impl<T: Copy> DeviceBuffer<T> {
    pub(crate) fn new(data: Vec<T>, reservation: Reservation) -> Self {
        DeviceBuffer { data, _reservation: reservation }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Read element `i` from a kernel lane, charging the memory counter.
    #[inline]
    pub fn read(&self, lane: &mut Lane, i: usize) -> T {
        lane.gmem_read(std::mem::size_of::<T>() as u64);
        self.data[i]
    }

    /// Raw slice access *without* cost accounting. Use only on the host
    /// (index construction, verification); kernels should use [`read`].
    ///
    /// [`read`]: DeviceBuffer::read
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// A fixed-capacity device buffer that kernels append to through an atomic
/// cursor — the simulated equivalent of
/// `resultSet[atomicAdd(&cursor, 1)] = item`.
///
/// Appends past capacity are discarded and set the overflow flag; the host
/// driver reacts by re-invoking the kernel or processing the query set
/// incrementally, exactly as in the paper (§III, §V-E).
pub struct ResultBuffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cursor: AtomicUsize,
    overflowed: AtomicBool,
    _reservation: Reservation,
}

// SAFETY: slots are only written through unique indices handed out by the
// atomic cursor, and only read after all kernel threads have completed
// (`&mut self` methods), so concurrent access to one slot never occurs.
unsafe impl<T: Send> Sync for ResultBuffer<T> {}
unsafe impl<T: Send> Send for ResultBuffer<T> {}

impl<T> ResultBuffer<T> {
    pub(crate) fn with_capacity(capacity: usize, reservation: Reservation) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || UnsafeCell::new(MaybeUninit::uninit()));
        ResultBuffer {
            slots: slots.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            overflowed: AtomicBool::new(false),
            _reservation: reservation,
        }
    }

    /// Capacity in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append `item` from a kernel lane. Returns `true` on success, `false`
    /// when the buffer is full (the overflow flag is then set and the item
    /// dropped). Charges one atomic plus the write bytes on success.
    #[inline]
    pub fn push(&self, lane: &mut Lane, item: T) -> bool {
        lane.atomic();
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        if idx < self.slots.len() {
            lane.gmem_write(std::mem::size_of::<T>() as u64);
            // SAFETY: `idx` was obtained from the atomic cursor, so no other
            // thread writes this slot; reads happen only after the launch.
            unsafe { (*self.slots[idx].get()).write(item) };
            true
        } else {
            self.overflowed.store(true, Ordering::Relaxed);
            false
        }
    }

    /// True if any append was rejected.
    pub fn overflowed(&self) -> bool {
        self.overflowed.load(Ordering::Relaxed)
    }

    /// Number of successfully stored elements.
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// True if no element was stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of append attempts (exceeds `capacity()` on overflow).
    pub fn attempted(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Drain the stored elements to the host, resetting the buffer for the
    /// next kernel invocation. Requires `&mut self`, i.e. no kernel running.
    pub fn drain_to_host(&mut self) -> Vec<T> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for slot in &mut self.slots[..n] {
            // SAFETY: slots [0, n) were initialised by `push`; after this
            // drain the cursor is reset so they are treated as uninit again.
            out.push(unsafe { slot.get_mut().assume_init_read() });
        }
        self.cursor.store(0, Ordering::Relaxed);
        self.overflowed.store(false, Ordering::Relaxed);
        out
    }
}

impl<T> Drop for ResultBuffer<T> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<T>() {
            let n = self.len();
            for slot in &mut self.slots[..n] {
                // SAFETY: slots [0, n) are initialised and never read again.
                unsafe { slot.get_mut().assume_init_drop() };
            }
        }
    }
}

/// A device buffer kernels write at *explicit, caller-disjoint* indices —
/// the write side of a two-pass (count → prefix-sum → scatter) output
/// scheme, which avoids result-buffer atomics entirely.
///
/// Each slot must be written at most once per launch (enforced with a
/// per-slot flag: double writes are data races on real hardware).
pub struct ScatterBuffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    written: Box<[AtomicBool]>,
    _reservation: Reservation,
}

// SAFETY: each slot accepts exactly one write per launch (checked via
// `written`), and reads happen only after the launch through `&mut self`.
unsafe impl<T: Send> Sync for ScatterBuffer<T> {}
unsafe impl<T: Send> Send for ScatterBuffer<T> {}

impl<T> ScatterBuffer<T> {
    pub(crate) fn with_capacity(capacity: usize, reservation: Reservation) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || UnsafeCell::new(MaybeUninit::uninit()));
        let mut written = Vec::with_capacity(capacity);
        written.resize_with(capacity, || AtomicBool::new(false));
        ScatterBuffer {
            slots: slots.into_boxed_slice(),
            written: written.into_boxed_slice(),
            _reservation: reservation,
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Write `item` at `idx` from a kernel lane (plain global write, no
    /// atomic). Panics on out-of-bounds or double writes.
    #[inline]
    pub fn write(&self, lane: &mut Lane, idx: usize, item: T) {
        assert!(idx < self.slots.len(), "scatter write {idx} out of bounds");
        assert!(
            !self.written[idx].swap(true, Ordering::AcqRel),
            "scatter slot {idx} written twice in one launch"
        );
        lane.gmem_write(std::mem::size_of::<T>() as u64);
        // SAFETY: the flag above guarantees this slot is written exactly
        // once; reads require `&mut self` (post-launch).
        unsafe { (*self.slots[idx].get()).write(item) };
    }

    /// Drain the first `len` slots to the host (all must have been written)
    /// and reset for the next launch.
    pub fn drain_to_host(&mut self, len: usize) -> Vec<T> {
        assert!(len <= self.slots.len());
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            assert!(
                *self.written[i].get_mut(),
                "scatter slot {i} was never written"
            );
            // SAFETY: flagged as written; consumed exactly once here.
            out.push(unsafe { self.slots[i].get_mut().assume_init_read() });
        }
        for w in self.written.iter_mut() {
            *w.get_mut() = false;
        }
        out
    }
}

impl<T> Drop for ScatterBuffer<T> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<T>() {
            for (slot, written) in self.slots.iter_mut().zip(self.written.iter_mut()) {
                if *written.get_mut() {
                    // SAFETY: written slots hold initialised values.
                    unsafe { slot.get_mut().assume_init_drop() };
                }
            }
        }
    }
}

/// Device memory partitioned into equal per-thread scratch areas — the
/// paper's candidate buffers `U_k` with `|U_k| = s / |Q|` (§IV-A).
///
/// Each kernel thread takes its own partition with [`take_partition`]; the
/// runtime check guarantees a partition is handed out at most once per
/// launch, making the aliasing-free access pattern explicit.
///
/// [`take_partition`]: PartitionedScratch::take_partition
pub struct PartitionedScratch<T> {
    data: Box<[UnsafeCell<T>]>,
    per_thread: usize,
    taken: Box<[AtomicBool]>,
    _reservation: Reservation,
}

// SAFETY: partitions are disjoint slices and each is handed out at most once
// per launch (enforced by the `taken` flags), so no two threads alias.
unsafe impl<T: Send> Sync for PartitionedScratch<T> {}
unsafe impl<T: Send> Send for PartitionedScratch<T> {}

impl<T: Copy + Default> PartitionedScratch<T> {
    pub(crate) fn new(partitions: usize, per_thread: usize, reservation: Reservation) -> Self {
        let mut data = Vec::with_capacity(partitions * per_thread);
        data.resize_with(partitions * per_thread, || UnsafeCell::new(T::default()));
        let mut taken = Vec::with_capacity(partitions);
        taken.resize_with(partitions, || AtomicBool::new(false));
        PartitionedScratch {
            data: data.into_boxed_slice(),
            per_thread,
            taken: taken.into_boxed_slice(),
            _reservation: reservation,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.taken.len()
    }

    /// Capacity of each partition in elements.
    pub fn partition_len(&self) -> usize {
        self.per_thread
    }

    /// Take exclusive access to partition `idx` for the current kernel
    /// thread. Panics if the partition was already taken this launch —
    /// that would be a data race on a real GPU too.
    pub fn take_partition(&self, idx: usize) -> ScratchPartition<'_, T> {
        assert!(
            !self.taken[idx].swap(true, Ordering::AcqRel),
            "scratch partition {idx} taken twice in one launch"
        );
        let start = idx * self.per_thread;
        ScratchPartition { scratch: self, start, len: 0 }
    }

    /// Reset all partitions for the next launch. `&mut self` guarantees no
    /// kernel thread still holds a partition.
    pub fn reset(&mut self) {
        for t in self.taken.iter() {
            t.store(false, Ordering::Relaxed);
        }
    }
}

/// Exclusive view of one scratch partition, used as an append buffer.
pub struct ScratchPartition<'a, T> {
    scratch: &'a PartitionedScratch<T>,
    start: usize,
    len: usize,
}

impl<'a, T: Copy + Default> ScratchPartition<'a, T> {
    /// Append `item`; returns `false` (buffer full) when the partition's
    /// capacity is exceeded — the paper's `U_k` overflow condition.
    #[inline]
    pub fn push(&mut self, lane: &mut Lane, item: T) -> bool {
        if self.len >= self.scratch.per_thread {
            return false;
        }
        lane.gmem_write(std::mem::size_of::<T>() as u64);
        // SAFETY: this partition is exclusively owned (enforced by
        // `take_partition`), and `start + len` stays within it.
        unsafe {
            *self.scratch.data[self.start + self.len].get() = item;
        }
        self.len += 1;
        true
    }

    /// Number of elements appended so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing was appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read back element `i`, charging the lane's memory counter.
    #[inline]
    pub fn read(&self, lane: &mut Lane, i: usize) -> T {
        assert!(i < self.len, "scratch read {i} out of bounds {}", self.len);
        lane.gmem_read(std::mem::size_of::<T>() as u64);
        // SAFETY: exclusive partition; index checked above.
        unsafe { *self.scratch.data[self.start + i].get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    fn device() -> Arc<Device> {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn result_buffer_push_and_drain() {
        let dev = device();
        let mut buf: ResultBuffer<u32> = dev.alloc_result(4).unwrap();
        let mut lane = Lane::new(0);
        for i in 0..4 {
            assert!(buf.push(&mut lane, i));
        }
        assert!(!buf.push(&mut lane, 99));
        assert!(buf.overflowed());
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.attempted(), 5);
        let got = buf.drain_to_host();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(!buf.overflowed());
        assert_eq!(buf.len(), 0);
        // Reusable after drain.
        assert!(buf.push(&mut lane, 7));
        assert_eq!(buf.drain_to_host(), vec![7]);
    }

    #[test]
    fn result_buffer_charges_counters() {
        let dev = device();
        let buf: ResultBuffer<u64> = dev.alloc_result(2).unwrap();
        let mut lane = Lane::new(0);
        buf.push(&mut lane, 1);
        assert_eq!(lane.counters().atomics, 1);
        assert_eq!(lane.counters().gmem_write_bytes, 8);
        // Overflowing push charges the atomic but not the write.
        buf.push(&mut lane, 2);
        buf.push(&mut lane, 3);
        assert_eq!(lane.counters().atomics, 3);
        assert_eq!(lane.counters().gmem_write_bytes, 16);
    }

    #[test]
    fn scratch_partitions_are_disjoint() {
        let dev = device();
        let mut scratch: PartitionedScratch<u32> = dev.alloc_scratch(4, 3).unwrap();
        let mut lane = Lane::new(0);
        {
            let mut p0 = scratch.take_partition(0);
            let mut p1 = scratch.take_partition(1);
            assert!(p0.push(&mut lane, 10));
            assert!(p1.push(&mut lane, 20));
            assert!(p0.push(&mut lane, 11));
            assert_eq!(p0.len(), 2);
            assert_eq!(p0.read(&mut lane, 0), 10);
            assert_eq!(p0.read(&mut lane, 1), 11);
            assert_eq!(p1.read(&mut lane, 0), 20);
        }
        scratch.reset();
        let mut p0 = scratch.take_partition(0);
        assert!(p0.is_empty());
        assert!(p0.push(&mut lane, 1));
    }

    #[test]
    fn scratch_overflow_returns_false() {
        let dev = device();
        let scratch: PartitionedScratch<u32> = dev.alloc_scratch(1, 2).unwrap();
        let mut lane = Lane::new(0);
        let mut p = scratch.take_partition(0);
        assert!(p.push(&mut lane, 1));
        assert!(p.push(&mut lane, 2));
        assert!(!p.push(&mut lane, 3));
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn scratch_double_take_panics() {
        let dev = device();
        let scratch: PartitionedScratch<u32> = dev.alloc_scratch(2, 2).unwrap();
        let _a = scratch.take_partition(0);
        let _b = scratch.take_partition(0);
    }

    #[test]
    fn scatter_buffer_write_and_drain() {
        let dev = device();
        let mut buf: ScatterBuffer<u32> = dev.alloc_scatter(4).unwrap();
        let mut lane = Lane::new(0);
        // Write out of order at disjoint indices.
        buf.write(&mut lane, 2, 22);
        buf.write(&mut lane, 0, 10);
        buf.write(&mut lane, 1, 11);
        assert_eq!(lane.counters().gmem_write_bytes, 12);
        assert_eq!(lane.counters().atomics, 0, "two-pass writes use no atomics");
        assert_eq!(buf.drain_to_host(3), vec![10, 11, 22]);
        // Reusable after drain.
        buf.write(&mut lane, 0, 99);
        assert_eq!(buf.drain_to_host(1), vec![99]);
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn scatter_double_write_panics() {
        let dev = device();
        let buf: ScatterBuffer<u32> = dev.alloc_scatter(2).unwrap();
        let mut lane = Lane::new(0);
        buf.write(&mut lane, 0, 1);
        buf.write(&mut lane, 0, 2);
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn scatter_drain_unwritten_panics() {
        let dev = device();
        let mut buf: ScatterBuffer<u32> = dev.alloc_scatter(2).unwrap();
        let mut lane = Lane::new(0);
        buf.write(&mut lane, 1, 1);
        let _ = buf.drain_to_host(2);
    }

    #[test]
    fn device_buffer_read_charges() {
        let dev = device();
        let buf = dev.alloc_from_host(vec![1.0f64, 2.0, 3.0]).unwrap();
        let mut lane = Lane::new(0);
        assert_eq!(buf.read(&mut lane, 1), 2.0);
        assert_eq!(lane.counters().gmem_read_bytes, 8);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.size_bytes(), 24);
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_memory() {
        let dev = device(); // 1 MiB
        let big = vec![0u8; 2 * 1024 * 1024];
        let err = dev.alloc_from_host(big).unwrap_err();
        assert_eq!(err.requested, 2 * 1024 * 1024);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn memory_released_on_drop() {
        let dev = device();
        assert_eq!(dev.mem_used(), 0);
        {
            let _buf = dev.alloc_from_host(vec![0u8; 1024]).unwrap();
            assert_eq!(dev.mem_used(), 1024);
        }
        assert_eq!(dev.mem_used(), 0);
    }
}
