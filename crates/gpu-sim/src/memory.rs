//! Simulated device global memory: read-only buffers, atomic-append result
//! buffers, and per-thread scratch partitions.
//!
//! Result writes support two strategies (see
//! [`crate::config::ResultWriteMode`]): the paper's per-record atomic append,
//! and warp-aggregated commits in which lanes stage matches in a
//! [`WarpStash`] and the warp flushes them together with a single cursor
//! `fetch_add` — the simulated analogue of the ballot/leader-`atomicAdd`/
//! scatter idiom on real hardware.

use crate::config::ResultWriteMode;
use crate::counters::Lane;
use crate::device::Device;
use crate::launch::{Warp, MAX_WARP_LANES};
use crate::sanitizer::{Origin, ShadowRef};
use parking_lot::{Mutex, MutexGuard};
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Converged ALU instructions charged per warp-aggregated flush: ballot,
/// popcount, leader election, base broadcast, and address arithmetic.
const COMMIT_INSTR: u64 = 8;

/// Error returned when a device allocation exceeds the remaining simulated
/// global memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    pub requested: usize,
    pub available: usize,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Accounting guard: holds the number of bytes reserved on a device and
/// releases them when dropped.
#[derive(Debug)]
pub(crate) struct Reservation {
    device: Arc<Device>,
    bytes: usize,
    /// Sanitizer registration; `None` when the device runs without one.
    shadow: Option<ShadowRef>,
}

impl Reservation {
    pub(crate) fn new(
        device: &Arc<Device>,
        bytes: usize,
        kind: &'static str,
        ty: &'static str,
        len: usize,
    ) -> Result<Self, OutOfDeviceMemory> {
        device.reserve(bytes)?;
        let shadow = device.sanitizer_ref().map(|san| ShadowRef::new(san, kind, ty, len));
        Ok(Reservation { device: Arc::clone(device), bytes, shadow })
    }

    /// The shadow-state handle, when a sanitizer is active.
    #[inline]
    pub(crate) fn shadow(&self) -> Option<&ShadowRef> {
        self.shadow.as_ref()
    }

    /// Reserve `additional` bytes on the same device (in-place buffer
    /// growth). The reservation releases the enlarged total on drop.
    pub(crate) fn grow(&mut self, additional: usize) -> Result<(), OutOfDeviceMemory> {
        self.device.reserve(additional)?;
        self.bytes += additional;
        Ok(())
    }

    /// Return `fewer` bytes to the device (in-place buffer compaction).
    pub(crate) fn shrink(&mut self, fewer: usize) {
        let fewer = fewer.min(self.bytes);
        self.device.release(fewer);
        self.bytes -= fewer;
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if let Some(shadow) = &self.shadow {
            shadow.release();
        }
        self.device.release(self.bytes);
    }
}

/// A buffer resident in simulated device global memory, read-only from
/// kernels.
///
/// Host-side writes go through [`Device::alloc_from_host`], which charges the
/// host→device transfer to the response-time ledger. Kernel lanes read
/// elements through [`DeviceBuffer::read`], which charges the lane's
/// global-memory counter.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    reservation: Reservation,
}

impl<T: Copy> DeviceBuffer<T> {
    pub(crate) fn new(data: Vec<T>, reservation: Reservation) -> Self {
        DeviceBuffer { data, reservation }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Read element `i` from a kernel lane, charging the memory counter.
    ///
    /// Under memcheck an out-of-bounds `i` is recorded as a finding and
    /// neutralised (the first element is returned) so one run can surface
    /// every bad access; without a sanitizer it panics like a slice index.
    #[inline]
    pub fn read(&self, lane: &mut Lane, i: usize) -> T {
        lane.gmem_read(std::mem::size_of::<T>() as u64);
        if i >= self.data.len() {
            if let Some(shadow) = self.reservation.shadow() {
                if shadow.oob_read(i, Origin::Lane(lane.global_id), self.data.len()) {
                    if let Some(&first) = self.data.first() {
                        return first;
                    }
                }
            }
        }
        self.data[i]
    }

    /// Raw slice access *without* cost accounting. Use only on the host
    /// (index construction, verification); kernels should use [`read`].
    ///
    /// [`read`]: DeviceBuffer::read
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Extend the buffer in place with host data, *offline* — analogous to
    /// [`Device::alloc_from_host`], no transfer is charged to the
    /// response-time ledger. This is the device side of generational
    /// ingestion: only the appended tail is copied, existing elements stay
    /// resident. Requires `&mut self`, i.e. no kernel running.
    pub fn extend_from_host(&mut self, more: &[T]) -> Result<(), OutOfDeviceMemory> {
        self.reservation.grow(std::mem::size_of_val(more))?;
        self.data.extend_from_slice(more);
        Ok(())
    }

    /// Remove the elements at the ascending positions in `removed`,
    /// preserving the order of survivors and returning the freed bytes to
    /// the device — the expire side of generational ingestion. Positions out
    /// of range are ignored. Requires `&mut self`, i.e. no kernel running.
    pub fn remove_positions(&mut self, removed: &[u32]) {
        if removed.is_empty() {
            return;
        }
        let before = self.data.len();
        let mut next = 0usize;
        let mut pos = 0u32;
        self.data.retain(|_| {
            let drop_it = removed.get(next).is_some_and(|&r| r == pos);
            if drop_it {
                next += 1;
            }
            pos += 1;
            !drop_it
        });
        self.reservation.shrink((before - self.data.len()) * std::mem::size_of::<T>());
    }
}

/// A columnar (struct-of-arrays) device buffer: `num_columns` equal-length
/// columns of `T`, read-only from kernels.
///
/// This is the device side of [`crate::config::SegmentLayout::Columnar`]:
/// where a [`DeviceBuffer`]`<Segment>` charges a lane the whole struct for
/// any field access, a columnar read charges exactly the `size_of::<T>()`
/// bytes of the one column touched — so a schedule-filtering lane that only
/// inspects `t_start`/`t_end` pays 16 bytes instead of 72, and consecutive
/// lanes reading the same column at consecutive rows model a perfectly
/// coalesced access. Allocate through [`Device::alloc_columns`] (offline) or
/// [`Device::upload_columns`] (charged to the response-time ledger).
#[derive(Debug)]
pub struct ColumnarBuffer<T> {
    columns: Vec<Vec<T>>,
    rows: usize,
    reservation: Reservation,
}

impl<T: Copy> ColumnarBuffer<T> {
    pub(crate) fn new(columns: Vec<Vec<T>>, reservation: Reservation) -> Self {
        let rows = columns.first().map_or(0, Vec::len);
        assert!(columns.iter().all(|c| c.len() == rows), "columns must have equal length");
        ColumnarBuffer { columns, rows, reservation }
    }

    /// Number of columns.
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (every column has this length).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the buffer holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Total size in bytes across all columns.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.columns.len() * self.rows * std::mem::size_of::<T>()
    }

    /// Read `column[row]` from a kernel lane, charging the memory counter
    /// for one element of one column.
    ///
    /// Under memcheck an out-of-range `column`/`row` is recorded as a
    /// finding and neutralised (element `[0][0]` is returned); without a
    /// sanitizer it panics like a slice index.
    #[inline]
    pub fn read(&self, lane: &mut Lane, column: usize, row: usize) -> T {
        lane.gmem_read(std::mem::size_of::<T>() as u64);
        if column >= self.columns.len() || row >= self.rows {
            if let Some(shadow) = self.reservation.shadow() {
                let offset = column.saturating_mul(self.rows).saturating_add(row);
                let neutralised = shadow.oob_read(
                    offset,
                    Origin::Lane(lane.global_id),
                    self.columns.len() * self.rows,
                );
                if neutralised && self.rows > 0 {
                    if let Some(first) = self.columns.first() {
                        return first[0];
                    }
                }
            }
        }
        self.columns[column][row]
    }

    /// Raw column access *without* cost accounting. Use only on the host
    /// (index construction, verification); kernels should use [`read`].
    ///
    /// [`read`]: ColumnarBuffer::read
    #[inline]
    pub fn column(&self, column: usize) -> &[T] {
        &self.columns[column]
    }

    /// Extend every column in place with host data, *offline* (no transfer
    /// charge) — the columnar counterpart of
    /// [`DeviceBuffer::extend_from_host`]. `more` must provide one
    /// equal-length slice per existing column. Requires `&mut self`.
    pub fn extend_columns(&mut self, more: &[&[T]]) -> Result<(), OutOfDeviceMemory> {
        assert_eq!(more.len(), self.columns.len(), "column count must match");
        let added = more.first().map_or(0, |c| c.len());
        assert!(more.iter().all(|c| c.len() == added), "columns must have equal length");
        self.reservation.grow(self.columns.len() * added * std::mem::size_of::<T>())?;
        for (col, extra) in self.columns.iter_mut().zip(more) {
            col.extend_from_slice(extra);
        }
        self.rows += added;
        Ok(())
    }

    /// Remove the rows at the ascending positions in `removed` from every
    /// column, preserving survivor order and returning the freed bytes —
    /// the columnar counterpart of [`DeviceBuffer::remove_positions`].
    pub fn remove_positions(&mut self, removed: &[u32]) {
        if removed.is_empty() {
            return;
        }
        let before = self.rows;
        for col in &mut self.columns {
            let mut next = 0usize;
            let mut pos = 0u32;
            col.retain(|_| {
                let drop_it = removed.get(next).is_some_and(|&r| r == pos);
                if drop_it {
                    next += 1;
                }
                pos += 1;
                !drop_it
            });
        }
        self.rows = self.columns.first().map_or(0, Vec::len);
        self.reservation
            .shrink(self.columns.len() * (before - self.rows) * std::mem::size_of::<T>());
    }
}

/// A fixed-capacity device buffer that kernels append to through an atomic
/// cursor — the simulated equivalent of
/// `resultSet[atomicAdd(&cursor, 1)] = item`.
///
/// Appends past capacity are discarded and set the overflow flag; the host
/// driver reacts by re-invoking the kernel or processing the query set
/// incrementally, exactly as in the paper (§III, §V-E).
pub struct ResultBuffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cursor: AtomicUsize,
    overflowed: AtomicBool,
    mode: ResultWriteMode,
    stash_capacity: usize,
    reservation: Reservation,
}

// SAFETY: slots are only written through unique indices handed out by the
// atomic cursor, and only read after all kernel threads have completed
// (`&mut self` methods), so concurrent access to one slot never occurs.
unsafe impl<T: Send> Sync for ResultBuffer<T> {}
// SAFETY: same argument as `Sync` above — the buffer owns its slots and the
// cursor; moving it across threads moves exclusive ownership with it.
unsafe impl<T: Send> Send for ResultBuffer<T> {}

impl<T> ResultBuffer<T> {
    pub(crate) fn with_capacity(
        capacity: usize,
        mode: ResultWriteMode,
        stash_capacity: usize,
        reservation: Reservation,
    ) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || UnsafeCell::new(MaybeUninit::uninit()));
        ResultBuffer {
            slots: slots.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            overflowed: AtomicBool::new(false),
            mode,
            stash_capacity: stash_capacity.max(1),
            reservation,
        }
    }

    /// Capacity in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The write strategy this buffer was allocated with.
    #[inline]
    pub fn write_mode(&self) -> ResultWriteMode {
        self.mode
    }

    /// Store `item` at `idx` without cost accounting; `false` (plus the
    /// overflow flag) when `idx` is past capacity. Callers charge the costs.
    #[inline]
    fn raw_write(&self, idx: usize, item: T) -> bool {
        if idx < self.slots.len() {
            // SAFETY: `idx` was obtained from the atomic cursor, so no other
            // thread writes this slot; reads happen only after the launch.
            unsafe { (*self.slots[idx].get()).write(item) };
            true
        } else {
            self.overflowed.store(true, Ordering::Relaxed);
            false
        }
    }

    /// Append `item` from a kernel lane. Returns `true` on success, `false`
    /// when the buffer is full (the overflow flag is then set and the item
    /// dropped). Charges one atomic plus the write bytes on success.
    #[inline]
    pub fn push(&self, lane: &mut Lane, item: T) -> bool {
        lane.atomic();
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let stored = self.raw_write(idx, item);
        if stored {
            lane.gmem_write(std::mem::size_of::<T>() as u64);
        }
        stored
    }

    /// Begin a warp's staged append session. Lanes [`WarpStash::stage`]
    /// matches during the lane loop; the warp epilogue calls
    /// [`WarpStash::commit`] to flush them with one cursor `fetch_add` for
    /// the whole warp ([`ResultWriteMode::WarpAggregated`]) or to replay the
    /// per-record behaviour ([`ResultWriteMode::PerLane`]).
    pub fn warp_stash(&self) -> WarpStash<'_, T> {
        WarpStash { buffer: self, staged: Vec::new(), dropped: 0, stored: 0, lost: 0 }
    }

    /// True if any append was rejected.
    ///
    /// Checking the flag is the host-driven redo acknowledgement: the
    /// sanitizer's lost-record accounting treats records dropped by this
    /// buffer as handled once the host has observed (or ruled out) the
    /// overflow, e.g. the batch-halving protocol of the batched temporal
    /// scheme.
    pub fn overflowed(&self) -> bool {
        if let Some(shadow) = self.reservation.shadow() {
            shadow.ack_losses();
        }
        self.overflowed.load(Ordering::Relaxed)
    }

    /// Number of successfully stored elements.
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// True if no element was stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of append attempts (exceeds `capacity()` on overflow).
    pub fn attempted(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Drain the stored elements to the host, resetting the buffer for the
    /// next kernel invocation. Requires `&mut self`, i.e. no kernel running.
    pub fn drain_to_host(&mut self) -> Vec<T> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for slot in &mut self.slots[..n] {
            // SAFETY: slots [0, n) were initialised by `push`; after this
            // drain the cursor is reset so they are treated as uninit again.
            out.push(unsafe { slot.get_mut().assume_init_read() });
        }
        self.cursor.store(0, Ordering::Relaxed);
        self.overflowed.store(false, Ordering::Relaxed);
        if let Some(shadow) = self.reservation.shadow() {
            shadow.note_drained((out.len() * std::mem::size_of::<T>()) as u64);
        }
        out
    }
}

impl<T> Drop for ResultBuffer<T> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<T>() {
            let n = self.len();
            for slot in &mut self.slots[..n] {
                // SAFETY: slots [0, n) are initialised and never read again.
                unsafe { slot.get_mut().assume_init_drop() };
            }
        }
    }
}

/// One warp's staged appends into a [`ResultBuffer`].
///
/// In [`ResultWriteMode::WarpAggregated`] each lane stages matches into its
/// own slot of the stash (a register/shared-memory tile on real hardware,
/// sized by [`crate::DeviceConfig::warp_stash_capacity`]); [`commit`] then
/// bumps the shared cursor **once** for the warp's whole batch and scatters
/// the records contiguously. In [`ResultWriteMode::PerLane`] the stash is
/// transparent: [`stage`] forwards straight to [`ResultBuffer::push`],
/// reproducing the paper's one-atomic-per-record baseline.
///
/// [`commit`]: WarpStash::commit
/// [`stage`]: WarpStash::stage
pub struct WarpStash<'a, T> {
    buffer: &'a ResultBuffer<T>,
    staged: Vec<Vec<T>>,
    dropped: u64,
    /// Records successfully stored through this stash (sanitizer
    /// lost-record accounting; reset at every [`WarpStash::commit`]).
    stored: u64,
    /// Records dropped through this stash (overflow or
    /// [`WarpStash::mark_dropped`]).
    lost: u64,
}

impl<'a, T> WarpStash<'a, T> {
    fn lane_slot(&mut self, lane_index: usize) -> &mut Vec<T> {
        assert!(lane_index < MAX_WARP_LANES, "lane index {lane_index} out of range");
        if self.staged.len() <= lane_index {
            self.staged.resize_with(lane_index + 1, Vec::new);
        }
        &mut self.staged[lane_index]
    }

    /// Stage `item` from a kernel lane.
    ///
    /// Per-lane mode appends immediately (one atomic per record) and returns
    /// whether the record was stored; warp-aggregated mode buffers the item
    /// (one ALU op) and always returns `true` — capacity is only checked at
    /// [`WarpStash::commit`].
    #[inline]
    pub fn stage(&mut self, lane: &mut Lane, item: T) -> bool {
        match self.buffer.mode {
            ResultWriteMode::PerLane => {
                let stored = self.buffer.push(lane, item);
                if stored {
                    self.stored += 1;
                } else {
                    self.lost += 1;
                    self.dropped |= 1 << lane.lane_index();
                }
                stored
            }
            ResultWriteMode::WarpAggregated => {
                lane.instr(1);
                self.lane_slot(lane.lane_index()).push(item);
                true
            }
        }
    }

    /// Stage `item` on behalf of lane `lane_index` from the warp epilogue
    /// (no `Lane` handle there). Buffered in both modes and flushed at
    /// [`WarpStash::commit`]; used e.g. to stage redo ids for dropped lanes.
    #[inline]
    pub fn stage_at(&mut self, lane_index: usize, item: T) {
        self.lane_slot(lane_index).push(item);
    }

    /// Record that `lane` lost a record without staging one (e.g. its
    /// scratch overflowed before any result was produced), so it shows up
    /// in the mask returned by [`WarpStash::commit`].
    #[inline]
    pub fn mark_dropped(&mut self, lane: &Lane) {
        self.lost += 1;
        self.dropped |= 1 << lane.lane_index();
    }

    /// Flush all staged records and return the dropped-lane bitmask (bit
    /// `i` set ⇔ lane `i` lost at least one record to buffer overflow, or
    /// was [`WarpStash::mark_dropped`]).
    ///
    /// Warp-aggregated mode charges one atomic per *flush round* — a lane
    /// staging more than `warp_stash_capacity` records forces
    /// `ceil(n/capacity)` rounds, the max over lanes — instead of one per
    /// record, plus `COMMIT_INSTR` converged instructions per round and
    /// coalesced write bytes for the stored records.
    pub fn commit(&mut self, warp: &mut Warp) -> u64 {
        let item_bytes = std::mem::size_of::<T>() as u64;
        match self.buffer.mode {
            ResultWriteMode::PerLane => {
                // Only `stage_at` items are pending here; replay them through
                // the per-record cursor protocol.
                for li in 0..self.staged.len() {
                    for item in std::mem::take(&mut self.staged[li]) {
                        warp.atomics(1);
                        let idx = self.buffer.cursor.fetch_add(1, Ordering::Relaxed);
                        if self.buffer.raw_write(idx, item) {
                            warp.gmem_write(item_bytes);
                            self.stored += 1;
                        } else {
                            self.lost += 1;
                            self.dropped |= 1 << li;
                        }
                    }
                }
                self.log_commit(warp);
                std::mem::take(&mut self.dropped)
            }
            ResultWriteMode::WarpAggregated => {
                let total: usize = self.staged.iter().map(Vec::len).sum();
                if total > 0 {
                    let cap = self.buffer.stash_capacity;
                    let flushes =
                        self.staged.iter().map(|s| s.len().div_ceil(cap)).max().unwrap_or(1) as u64;
                    warp.instr(flushes * COMMIT_INSTR);
                    warp.atomics(flushes);
                    let base = self.buffer.cursor.fetch_add(total, Ordering::Relaxed);
                    let mut offset = 0usize;
                    for li in 0..self.staged.len() {
                        for item in std::mem::take(&mut self.staged[li]) {
                            if self.buffer.raw_write(base + offset, item) {
                                warp.gmem_write(item_bytes);
                                self.stored += 1;
                            } else {
                                self.lost += 1;
                                self.dropped |= 1 << li;
                            }
                            offset += 1;
                        }
                    }
                }
                self.log_commit(warp);
                std::mem::take(&mut self.dropped)
            }
        }
    }

    /// Report this commit's stored/lost counts to the sanitizer's
    /// lost-record accounting and reset them for the next commit.
    fn log_commit(&mut self, warp: &Warp) {
        let stored = std::mem::take(&mut self.stored);
        let lost = std::mem::take(&mut self.lost);
        if let Some(shadow) = self.buffer.reservation.shadow() {
            shadow.log_commit(warp.index(), stored, lost);
        }
    }
}

/// A device buffer kernels write at *explicit, caller-disjoint* indices —
/// the write side of a two-pass (count → prefix-sum → scatter) output
/// scheme, which avoids result-buffer atomics entirely.
///
/// Each slot must be written at most once per launch: double writes are
/// data races on real hardware. Slots are `Mutex<Option<T>>` — the lock is
/// uncontended by construction (disjoint indices), costs nothing in the
/// simulated model, and makes the buffer safe without `unsafe` aliasing
/// arguments. Without a sanitizer a violation panics; under
/// [`crate::SanitizerMode::Racecheck`] writes are logged per launch and
/// conflicting slots surface as structured findings at launch end instead.
pub struct ScatterBuffer<T> {
    slots: Box<[Mutex<Option<T>>]>,
    mode: ResultWriteMode,
    reservation: Reservation,
}

impl<T> ScatterBuffer<T> {
    pub(crate) fn with_capacity(
        capacity: usize,
        mode: ResultWriteMode,
        reservation: Reservation,
    ) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || Mutex::new(None));
        ScatterBuffer { slots: slots.into_boxed_slice(), mode, reservation }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The write strategy this buffer was allocated with.
    #[inline]
    pub fn write_mode(&self) -> ResultWriteMode {
        self.mode
    }

    /// Store `item` at `idx` without cost accounting. Panics on
    /// out-of-bounds or double writes (a data race on real hardware) unless
    /// the responsible sanitizer pass records and neutralises the access.
    fn raw_write(&self, origin: Origin, idx: usize, item: T) {
        if idx >= self.slots.len() {
            if let Some(shadow) = self.reservation.shadow() {
                if shadow.oob_write(idx, origin, self.slots.len()) {
                    return;
                }
            }
            panic!("scatter write {idx} out of bounds");
        }
        if let Some(shadow) = self.reservation.shadow() {
            shadow.log_scatter_write(idx, origin);
        }
        let mut slot = self.slots[idx].lock();
        if slot.is_some() {
            if self.reservation.shadow().is_some_and(ShadowRef::racecheck) {
                // First write wins; the conflict was logged above and the
                // launch-end race analysis reports it.
                return;
            }
            panic!("scatter slot {idx} written twice in one launch");
        }
        *slot = Some(item);
    }

    /// Write `item` at `idx` from a kernel lane (plain global write, no
    /// atomic). Panics on out-of-bounds or double writes.
    #[inline]
    pub fn write(&self, lane: &mut Lane, idx: usize, item: T) {
        lane.gmem_write(std::mem::size_of::<T>() as u64);
        self.raw_write(Origin::Lane(lane.global_id), idx, item);
    }

    /// Begin a warp's staged scatter session (see [`ScatterStash`]).
    pub fn warp_stash(&self) -> ScatterStash<'_, T> {
        ScatterStash { buffer: self, staged: Vec::new() }
    }

    /// Drain the first `len` slots to the host (all must have been written)
    /// and reset for the next launch. A never-written slot panics — or,
    /// under memcheck, is recorded as an uninitialized read and skipped.
    pub fn drain_to_host(&mut self, len: usize) -> Vec<T> {
        assert!(len <= self.slots.len());
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            match self.slots[i].get_mut().take() {
                Some(item) => out.push(item),
                None => {
                    let neutralised = self
                        .reservation
                        .shadow()
                        .is_some_and(|shadow| shadow.uninit_read(i, Origin::Host, out.len()));
                    assert!(neutralised, "scatter slot {i} was never written");
                }
            }
        }
        for slot in self.slots.iter_mut().skip(len) {
            *slot.get_mut() = None;
        }
        if let Some(shadow) = self.reservation.shadow() {
            shadow.note_drained((out.len() * std::mem::size_of::<T>()) as u64);
        }
        out
    }
}

/// One warp's staged writes into a [`ScatterBuffer`].
///
/// Scatter writes already use no atomics; what warp aggregation buys here is
/// write-combining: staged records are flushed together in
/// [`ScatterStash::commit`] as coalesced warp traffic instead of per-lane
/// stores scattered across the launch. In [`ResultWriteMode::PerLane`] the
/// stash is transparent and [`ScatterStash::stage`] writes immediately.
pub struct ScatterStash<'a, T> {
    buffer: &'a ScatterBuffer<T>,
    staged: Vec<(usize, T)>,
}

impl<'a, T> ScatterStash<'a, T> {
    /// Stage `item` for slot `idx` from a kernel lane.
    #[inline]
    pub fn stage(&mut self, lane: &mut Lane, idx: usize, item: T) {
        match self.buffer.mode {
            ResultWriteMode::PerLane => self.buffer.write(lane, idx, item),
            ResultWriteMode::WarpAggregated => {
                lane.instr(1);
                self.staged.push((idx, item));
            }
        }
    }

    /// Flush all staged writes, charging the warp coalesced write bytes.
    pub fn commit(&mut self, warp: &mut Warp) {
        if self.staged.is_empty() {
            return;
        }
        let bytes = (self.staged.len() * std::mem::size_of::<T>()) as u64;
        warp.instr(COMMIT_INSTR);
        warp.gmem_write(bytes);
        for (idx, item) in self.staged.drain(..) {
            self.buffer.raw_write(Origin::Warp(warp.index()), idx, item);
        }
    }
}

/// Device memory partitioned into equal per-thread scratch areas — the
/// paper's candidate buffers `U_k` with `|U_k| = s / |Q|` (§IV-A).
///
/// Each kernel thread takes its own partition with [`take_partition`]; the
/// runtime check guarantees a partition is handed out at most once per
/// launch, making the aliasing-free access pattern explicit. Each
/// partition's storage sits behind its own `Mutex` — uncontended by
/// construction, which keeps the type free of `unsafe` aliasing arguments
/// while charging exactly the same simulated costs.
///
/// [`take_partition`]: PartitionedScratch::take_partition
pub struct PartitionedScratch<T> {
    parts: Box<[Mutex<Vec<T>>]>,
    per_thread: usize,
    taken: Box<[AtomicBool]>,
    mode: ResultWriteMode,
    reservation: Reservation,
}

impl<T: Copy + Default> PartitionedScratch<T> {
    pub(crate) fn new(
        partitions: usize,
        per_thread: usize,
        mode: ResultWriteMode,
        reservation: Reservation,
    ) -> Self {
        let mut parts = Vec::with_capacity(partitions);
        parts.resize_with(partitions, || Mutex::new(Vec::with_capacity(per_thread)));
        let mut taken = Vec::with_capacity(partitions);
        taken.resize_with(partitions, || AtomicBool::new(false));
        PartitionedScratch {
            parts: parts.into_boxed_slice(),
            per_thread,
            taken: taken.into_boxed_slice(),
            mode,
            reservation,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.taken.len()
    }

    /// Capacity of each partition in elements.
    pub fn partition_len(&self) -> usize {
        self.per_thread
    }

    /// Take exclusive access to partition `idx` for the current kernel
    /// thread. Panics if the partition was already taken this launch —
    /// that would be a data race on a real GPU too.
    pub fn take_partition(&self, idx: usize) -> ScratchPartition<'_, T> {
        assert!(
            !self.taken[idx].swap(true, Ordering::AcqRel),
            "scratch partition {idx} taken twice in one launch"
        );
        let mut data = self.parts[idx].lock();
        data.clear();
        ScratchPartition {
            data,
            base: idx * self.per_thread,
            cap: self.per_thread,
            mode: self.mode,
            pending: 0,
            shadow: self.reservation.shadow().cloned(),
        }
    }

    /// Reset all partitions for the next launch. `&mut self` guarantees no
    /// kernel thread still holds a partition.
    pub fn reset(&mut self) {
        for t in self.taken.iter() {
            t.store(false, Ordering::Relaxed);
        }
    }
}

/// Exclusive view of one scratch partition, used as an append buffer.
pub struct ScratchPartition<'a, T> {
    data: MutexGuard<'a, Vec<T>>,
    /// First word of this partition within the whole scratch allocation
    /// (sanitizer findings report absolute offsets).
    base: usize,
    cap: usize,
    mode: ResultWriteMode,
    pending: u64,
    shadow: Option<ShadowRef>,
}

impl<'a, T: Copy + Default> ScratchPartition<'a, T> {
    /// Append `item`; returns `false` (buffer full) when the partition's
    /// capacity is exceeded — the paper's `U_k` overflow condition.
    ///
    /// In [`ResultWriteMode::PerLane`] each append is an immediate per-lane
    /// global write. In [`ResultWriteMode::WarpAggregated`] appends cost one
    /// ALU op and the write bytes accumulate in
    /// [`ScratchPartition::pending_write_bytes`], which the kernel's warp
    /// epilogue charges as coalesced warp traffic (staged chunk
    /// write-combining).
    #[inline]
    pub fn push(&mut self, lane: &mut Lane, item: T) -> bool {
        if self.data.len() >= self.cap {
            return false;
        }
        match self.mode {
            ResultWriteMode::PerLane => lane.gmem_write(std::mem::size_of::<T>() as u64),
            ResultWriteMode::WarpAggregated => {
                lane.instr(1);
                self.pending += std::mem::size_of::<T>() as u64;
            }
        }
        self.data.push(item);
        true
    }

    /// Write bytes accumulated by warp-aggregated appends and not yet
    /// charged; the caller's warp epilogue should charge these via
    /// [`Warp::gmem_write`]. Always zero in per-lane mode.
    #[inline]
    pub fn pending_write_bytes(&self) -> u64 {
        self.pending
    }

    /// Number of elements appended so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing was appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read back element `i`, charging the lane's memory counter.
    ///
    /// Without a sanitizer a read past the appended length panics. Under
    /// memcheck it is recorded — as an uninitialized read when `i` is
    /// inside the partition's capacity but was never written this session,
    /// or as an out-of-bounds read past the capacity — and neutralised by
    /// returning `T::default()`.
    #[inline]
    pub fn read(&self, lane: &mut Lane, i: usize) -> T {
        if i >= self.data.len() {
            if let Some(shadow) = &self.shadow {
                let neutralised = if i >= self.cap {
                    shadow.oob_read(self.base + i, Origin::Lane(lane.global_id), self.cap)
                } else {
                    shadow.uninit_read(self.base + i, Origin::Lane(lane.global_id), self.data.len())
                };
                if neutralised {
                    lane.gmem_read(std::mem::size_of::<T>() as u64);
                    return T::default();
                }
            }
            panic!("scratch read {i} out of bounds {}", self.data.len());
        }
        lane.gmem_read(std::mem::size_of::<T>() as u64);
        self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    fn device() -> Arc<Device> {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn result_buffer_push_and_drain() {
        let dev = device();
        let mut buf: ResultBuffer<u32> = dev.alloc_result(4).unwrap();
        let mut lane = Lane::new(0);
        for i in 0..4 {
            assert!(buf.push(&mut lane, i));
        }
        assert!(!buf.push(&mut lane, 99));
        assert!(buf.overflowed());
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.attempted(), 5);
        let got = buf.drain_to_host();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(!buf.overflowed());
        assert_eq!(buf.len(), 0);
        // Reusable after drain.
        assert!(buf.push(&mut lane, 7));
        assert_eq!(buf.drain_to_host(), vec![7]);
    }

    #[test]
    fn result_buffer_charges_counters() {
        let dev = device();
        let buf: ResultBuffer<u64> = dev.alloc_result(2).unwrap();
        let mut lane = Lane::new(0);
        buf.push(&mut lane, 1);
        assert_eq!(lane.counters().atomics, 1);
        assert_eq!(lane.counters().gmem_write_bytes, 8);
        // Overflowing push charges the atomic but not the write.
        buf.push(&mut lane, 2);
        buf.push(&mut lane, 3);
        assert_eq!(lane.counters().atomics, 3);
        assert_eq!(lane.counters().gmem_write_bytes, 16);
    }

    #[test]
    fn scratch_partitions_are_disjoint() {
        let dev = device();
        let mut scratch: PartitionedScratch<u32> = dev.alloc_scratch(4, 3).unwrap();
        let mut lane = Lane::new(0);
        {
            let mut p0 = scratch.take_partition(0);
            let mut p1 = scratch.take_partition(1);
            assert!(p0.push(&mut lane, 10));
            assert!(p1.push(&mut lane, 20));
            assert!(p0.push(&mut lane, 11));
            assert_eq!(p0.len(), 2);
            assert_eq!(p0.read(&mut lane, 0), 10);
            assert_eq!(p0.read(&mut lane, 1), 11);
            assert_eq!(p1.read(&mut lane, 0), 20);
        }
        scratch.reset();
        let mut p0 = scratch.take_partition(0);
        assert!(p0.is_empty());
        assert!(p0.push(&mut lane, 1));
    }

    #[test]
    fn scratch_overflow_returns_false() {
        let dev = device();
        let scratch: PartitionedScratch<u32> = dev.alloc_scratch(1, 2).unwrap();
        let mut lane = Lane::new(0);
        let mut p = scratch.take_partition(0);
        assert!(p.push(&mut lane, 1));
        assert!(p.push(&mut lane, 2));
        assert!(!p.push(&mut lane, 3));
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn scratch_double_take_panics() {
        let dev = device();
        let scratch: PartitionedScratch<u32> = dev.alloc_scratch(2, 2).unwrap();
        let _a = scratch.take_partition(0);
        let _b = scratch.take_partition(0);
    }

    #[test]
    fn scatter_buffer_write_and_drain() {
        let dev = device();
        let mut buf: ScatterBuffer<u32> = dev.alloc_scatter(4).unwrap();
        let mut lane = Lane::new(0);
        // Write out of order at disjoint indices.
        buf.write(&mut lane, 2, 22);
        buf.write(&mut lane, 0, 10);
        buf.write(&mut lane, 1, 11);
        assert_eq!(lane.counters().gmem_write_bytes, 12);
        assert_eq!(lane.counters().atomics, 0, "two-pass writes use no atomics");
        assert_eq!(buf.drain_to_host(3), vec![10, 11, 22]);
        // Reusable after drain.
        buf.write(&mut lane, 0, 99);
        assert_eq!(buf.drain_to_host(1), vec![99]);
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn scatter_double_write_panics() {
        let dev = device();
        let buf: ScatterBuffer<u32> = dev.alloc_scatter(2).unwrap();
        let mut lane = Lane::new(0);
        buf.write(&mut lane, 0, 1);
        buf.write(&mut lane, 0, 2);
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn scatter_drain_unwritten_panics() {
        let dev = device();
        let mut buf: ScatterBuffer<u32> = dev.alloc_scatter(2).unwrap();
        let mut lane = Lane::new(0);
        buf.write(&mut lane, 1, 1);
        let _ = buf.drain_to_host(2);
    }

    #[test]
    fn device_buffer_read_charges() {
        let dev = device();
        let buf = dev.alloc_from_host(vec![1.0f64, 2.0, 3.0]).unwrap();
        let mut lane = Lane::new(0);
        assert_eq!(buf.read(&mut lane, 1), 2.0);
        assert_eq!(lane.counters().gmem_read_bytes, 8);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.size_bytes(), 24);
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn columnar_buffer_reads_charge_one_column_element() {
        let dev = device();
        let buf = dev.alloc_columns(&[&[1.0f64, 2.0, 3.0][..], &[10.0, 20.0, 30.0][..]]).unwrap();
        assert_eq!(buf.num_columns(), 2);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        assert_eq!(buf.size_bytes(), 2 * 3 * 8);
        let mut lane = Lane::new(0);
        assert_eq!(buf.read(&mut lane, 0, 1), 2.0);
        assert_eq!(lane.counters().gmem_read_bytes, 8, "one column element, not the row");
        assert_eq!(buf.read(&mut lane, 1, 2), 30.0);
        assert_eq!(lane.counters().gmem_read_bytes, 16);
        // Host access is uncharged.
        assert_eq!(buf.column(1), &[10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn columnar_buffer_rejects_ragged_columns() {
        let dev = device();
        let _ = dev.alloc_columns(&[&[1.0f64][..], &[1.0, 2.0][..]]);
    }

    #[test]
    fn columnar_buffer_reserves_and_releases_memory() {
        let dev = device();
        assert_eq!(dev.mem_used(), 0);
        {
            let buf = dev.alloc_columns(&[&[0u8; 100][..], &[0u8; 100][..]]).unwrap();
            assert_eq!(dev.mem_used(), buf.size_bytes());
        }
        assert_eq!(dev.mem_used(), 0);
    }

    #[test]
    fn device_buffer_extends_and_compacts_in_place() {
        let dev = device();
        let mut buf = dev.alloc_from_host(vec![1u32, 2, 3]).unwrap();
        let used = dev.mem_used();
        buf.extend_from_host(&[4, 5]).unwrap();
        assert_eq!(buf.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(dev.mem_used(), used + 8, "growth reserves the new bytes");
        buf.remove_positions(&[0, 3]);
        assert_eq!(buf.as_slice(), &[2, 3, 5]);
        assert_eq!(dev.mem_used(), used, "compaction returns the freed bytes");
        drop(buf);
        assert_eq!(dev.mem_used(), 0, "drop releases the final size");
    }

    #[test]
    fn columnar_buffer_extends_and_compacts_in_place() {
        let dev = device();
        let mut buf = dev.alloc_columns(&[&[1.0f64, 2.0][..], &[10.0, 20.0][..]]).unwrap();
        let used = dev.mem_used();
        buf.extend_columns(&[&[3.0][..], &[30.0][..]]).unwrap();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.column(0), &[1.0, 2.0, 3.0]);
        assert_eq!(buf.column(1), &[10.0, 20.0, 30.0]);
        assert_eq!(dev.mem_used(), used + 16);
        buf.remove_positions(&[1]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.column(0), &[1.0, 3.0]);
        assert_eq!(buf.column(1), &[10.0, 30.0]);
        assert_eq!(dev.mem_used(), used);
        drop(buf);
        assert_eq!(dev.mem_used(), 0);
    }

    #[test]
    fn extend_past_device_memory_fails() {
        let dev = device(); // 1 MiB
        let mut buf = dev.alloc_from_host(vec![0u8; 1024]).unwrap();
        assert!(buf.extend_from_host(&vec![0u8; 2 * 1024 * 1024]).is_err());
        // The failed growth reserved nothing.
        assert_eq!(dev.mem_used(), 1024);
    }

    #[test]
    fn out_of_memory() {
        let dev = device(); // 1 MiB
        let big = vec![0u8; 2 * 1024 * 1024];
        let err = dev.alloc_from_host(big).unwrap_err();
        assert_eq!(err.requested, 2 * 1024 * 1024);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn memory_released_on_drop() {
        let dev = device();
        assert_eq!(dev.mem_used(), 0);
        {
            let _buf = dev.alloc_from_host(vec![0u8; 1024]).unwrap();
            assert_eq!(dev.mem_used(), 1024);
        }
        assert_eq!(dev.mem_used(), 0);
    }

    fn device_with(mode: ResultWriteMode) -> Arc<Device> {
        let mut c = DeviceConfig::test_tiny();
        c.result_write_mode = mode;
        Device::new(c).unwrap()
    }

    #[test]
    fn warp_stash_commits_with_one_atomic_per_flush() {
        let dev = device_with(ResultWriteMode::WarpAggregated);
        let mut buf: ResultBuffer<u32> = dev.alloc_result(16).unwrap();
        let mut warp = Warp::standalone(4);
        {
            let mut stash = buf.warp_stash();
            warp.for_each_lane(|lane| {
                // Lane i stages i records; staging costs ALU, not atomics.
                for i in 0..lane.lane_index() as u32 {
                    assert!(stash.stage(lane, lane.lane_index() as u32 * 10 + i));
                }
                assert_eq!(lane.counters().atomics, 0);
            });
            let dropped = stash.commit(&mut warp);
            assert_eq!(dropped, 0);
        }
        // 6 records, deepest lane stages 3 <= stash capacity 4: one flush.
        assert_eq!(warp.counters().atomics, 1);
        assert_eq!(warp.counters().gmem_write_bytes, 6 * 4);
        assert!(warp.counters().instructions >= 1);
        let mut got = buf.drain_to_host();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 21, 30, 31, 32]);
    }

    #[test]
    fn warp_stash_deep_lane_forces_extra_flushes() {
        let dev = device_with(ResultWriteMode::WarpAggregated);
        let buf: ResultBuffer<u32> = dev.alloc_result(16).unwrap();
        let mut warp = Warp::standalone(2);
        let mut stash = buf.warp_stash();
        warp.for_each_lane(|lane| {
            if lane.lane_index() == 0 {
                for i in 0..9 {
                    stash.stage(lane, i);
                }
            }
        });
        stash.commit(&mut warp);
        // ceil(9 / stash capacity 4) = 3 flush rounds.
        assert_eq!(warp.counters().atomics, 3);
    }

    #[test]
    fn warp_stash_overflow_sets_flag_and_lane_mask() {
        let dev = device_with(ResultWriteMode::WarpAggregated);
        let mut buf: ResultBuffer<u32> = dev.alloc_result(3).unwrap();
        let mut warp = Warp::standalone(4);
        let dropped = {
            let mut stash = buf.warp_stash();
            warp.for_each_lane(|lane| {
                // Lane i stages i records: 0 + 1 + 2 + 3 = 6 > capacity 3.
                for i in 0..lane.lane_index() as u32 {
                    stash.stage(lane, i);
                }
            });
            stash.commit(&mut warp)
        };
        assert!(buf.overflowed());
        assert_eq!(buf.len(), 3);
        // Records scatter in lane order: lane 1's record and lane 2's two
        // fill the buffer; lane 3 loses all three of its records.
        assert_eq!(dropped, 1 << 3);
        // Only stored records are charged as writes.
        assert_eq!(warp.counters().gmem_write_bytes, 3 * 4);
        assert_eq!(buf.drain_to_host().len(), 3);
    }

    #[test]
    fn warp_stash_mark_dropped_and_stage_at() {
        let dev = device_with(ResultWriteMode::WarpAggregated);
        let mut buf: ResultBuffer<u32> = dev.alloc_result(8).unwrap();
        let mut warp = Warp::standalone(4);
        let dropped = {
            let mut stash = buf.warp_stash();
            warp.for_each_lane(|lane| {
                if lane.lane_index() == 2 {
                    stash.mark_dropped(lane);
                }
            });
            stash.stage_at(1, 41);
            stash.commit(&mut warp)
        };
        assert_eq!(dropped, 1 << 2);
        assert_eq!(buf.drain_to_host(), vec![41]);
    }

    #[test]
    fn per_lane_stash_is_transparent() {
        let dev = device_with(ResultWriteMode::PerLane);
        let mut buf: ResultBuffer<u32> = dev.alloc_result(2).unwrap();
        let mut warp = Warp::standalone(4);
        let dropped = {
            let mut stash = buf.warp_stash();
            warp.for_each_lane(|lane| {
                // One record per lane against capacity 2: lanes 2 and 3
                // overflow immediately (per-record atomic protocol).
                let stored = stash.stage(lane, lane.lane_index() as u32);
                assert_eq!(stored, lane.lane_index() < 2);
                assert_eq!(lane.counters().atomics, 1);
            });
            stash.commit(&mut warp)
        };
        assert_eq!(dropped, (1 << 2) | (1 << 3));
        // The stash added no warp-level atomics in per-lane mode.
        assert_eq!(warp.counters().atomics, 0);
        assert!(buf.overflowed());
        assert_eq!(buf.drain_to_host(), vec![0, 1]);
    }

    #[test]
    fn per_lane_stage_at_replays_cursor_protocol() {
        let dev = device_with(ResultWriteMode::PerLane);
        let mut buf: ResultBuffer<u32> = dev.alloc_result(4).unwrap();
        let mut warp = Warp::standalone(4);
        {
            let mut stash = buf.warp_stash();
            stash.stage_at(0, 7);
            stash.stage_at(3, 9);
            assert_eq!(stash.commit(&mut warp), 0);
        }
        assert_eq!(warp.counters().atomics, 2);
        assert_eq!(buf.drain_to_host(), vec![7, 9]);
    }

    #[test]
    fn scatter_stash_write_combines() {
        let dev = device_with(ResultWriteMode::WarpAggregated);
        let mut buf: ScatterBuffer<u32> = dev.alloc_scatter(4).unwrap();
        let mut warp = Warp::standalone(4);
        {
            let mut stash = buf.warp_stash();
            warp.for_each_lane(|lane| {
                let li = lane.lane_index();
                stash.stage(lane, li, li as u32 * 10);
                // Staging is ALU work, not per-lane memory traffic.
                assert_eq!(lane.counters().gmem_write_bytes, 0);
            });
            stash.commit(&mut warp);
        }
        assert_eq!(warp.counters().gmem_write_bytes, 16);
        assert_eq!(buf.drain_to_host(4), vec![0, 10, 20, 30]);
    }

    #[test]
    fn scatter_stash_per_lane_writes_immediately() {
        let dev = device_with(ResultWriteMode::PerLane);
        let mut buf: ScatterBuffer<u32> = dev.alloc_scatter(2).unwrap();
        let mut warp = Warp::standalone(2);
        {
            let mut stash = buf.warp_stash();
            warp.for_each_lane(|lane| {
                let li = lane.lane_index();
                stash.stage(lane, li, li as u32);
                assert_eq!(lane.counters().gmem_write_bytes, 4);
            });
            stash.commit(&mut warp);
        }
        assert_eq!(warp.counters().gmem_write_bytes, 0);
        assert_eq!(buf.drain_to_host(2), vec![0, 1]);
    }

    #[test]
    fn scratch_pending_bytes_accumulate_in_warp_mode() {
        let dev = device_with(ResultWriteMode::WarpAggregated);
        let scratch: PartitionedScratch<u32> = dev.alloc_scratch(1, 8).unwrap();
        let mut lane = Lane::new(0);
        let mut p = scratch.take_partition(0);
        for i in 0..3 {
            assert!(p.push(&mut lane, i));
        }
        assert_eq!(p.pending_write_bytes(), 12);
        assert_eq!(lane.counters().gmem_write_bytes, 0, "deferred to the warp epilogue");
        // Reads still charge the lane.
        assert_eq!(p.read(&mut lane, 1), 1);
        assert_eq!(lane.counters().gmem_read_bytes, 4);

        let dev = device_with(ResultWriteMode::PerLane);
        let scratch: PartitionedScratch<u32> = dev.alloc_scratch(1, 8).unwrap();
        let mut lane = Lane::new(0);
        let mut p = scratch.take_partition(0);
        assert!(p.push(&mut lane, 5));
        assert_eq!(p.pending_write_bytes(), 0);
        assert_eq!(lane.counters().gmem_write_bytes, 4);
    }
}
