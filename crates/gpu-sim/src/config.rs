//! Device configuration and the cost-model parameters.

use crate::report::SearchError;
use crate::sanitizer::SanitizerMode;
use serde::{Deserialize, Serialize};

/// How kernels write records into atomic-append result buffers.
///
/// The paper's kernels (§III) append every match through one shared atomic
/// cursor — one `atomicAdd` per record. The warp-aggregated strategy is the
/// classic mitigation (ballot the hitting lanes, elect a leader that performs
/// a single `atomicAdd(total)` for the whole warp, scatter at
/// `base + lane_rank`): lanes stage matches in a small per-lane stash and the
/// warp commits them together, paying one atomic per *flush* instead of one
/// per *record*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResultWriteMode {
    /// One atomic cursor bump per appended record (the paper's baseline).
    PerLane,
    /// Stage per lane, commit per warp: one cursor bump per warp flush.
    #[default]
    WarpAggregated,
}

/// How kernels map queries onto the launch grid.
///
/// The paper assigns one thread per query (§IV-B/C): each thread scans its
/// query's whole scheduled candidate range, so a warp costs as much as its
/// heaviest lane and 31 lanes idle behind it when range lengths are skewed.
/// `WarpPerTile` is the standard manycore fix: the host splits every
/// candidate range into tiles of at most [`DeviceConfig::tile_size`]
/// entries, a persistent grid of warps pulls tiles from a device-side
/// [`crate::WorkQueue`] (one atomic per grab), and the warp's lanes stride
/// one tile's entries together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelShape {
    /// One thread per query, static grid (the paper's mapping).
    #[default]
    ThreadPerQuery,
    /// Persistent warps pulling (query, candidate-subrange) tiles from a
    /// global work queue; lanes cooperate on one tile at a time.
    WarpPerTile,
}

/// How segment data is laid out in device global memory.
///
/// `Aos` uploads the host's array-of-structs `Vec<Segment>` as-is: every
/// lane touching any field drags the whole 72-byte struct through the memory
/// system. `Columnar` transposes segments into per-field `f64` columns
/// (struct-of-arrays) before upload, so consecutive lanes reading the same
/// field hit consecutive words — the coalescing-friendly layout the paper's
/// `X`/`Y`/`Z` id arrays already use — and a schedule-filtering lane that
/// only needs `t_start`/`t_end` is charged 16 bytes, not 72. Ids stay on the
/// host in either layout (kernels address entries by position), which also
/// shrinks the H2D query upload from 72 to 64 bytes per segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentLayout {
    /// Whole-struct device buffers (the pre-columnar behaviour).
    Aos,
    /// Per-field `f64` column buffers with per-column read charging.
    #[default]
    Columnar,
}

/// Parameters of the simulated device.
///
/// The defaults ([`DeviceConfig::tesla_c2075`]) approximate the NVIDIA Tesla
/// C2075 used in the paper: 14 streaming multiprocessors × 32 cores =
/// 448 CUDA cores at 1.15 GHz, 6 GiB of global memory, on a PCI Express 2.0
/// x16 bus (~6 GB/s effective). Cost-model parameters (cycles per
/// instruction/transaction/atomic, occupancy) are first-order estimates; the
/// paper's comparative results depend on *relative* costs, which these
/// preserve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name (appears in reports).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Lanes per warp (CUDA fixes this at 32).
    pub warp_size: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Global memory capacity in bytes; allocations beyond it fail.
    pub global_mem_bytes: usize,
    /// Host→device bandwidth in bytes/second.
    pub h2d_bandwidth: f64,
    /// Device→host bandwidth in bytes/second.
    pub d2h_bandwidth: f64,
    /// Fixed per-transfer latency in seconds (DMA setup + driver).
    pub transfer_latency: f64,
    /// Fixed per-launch overhead in seconds (driver + scheduling).
    pub kernel_launch_overhead: f64,
    /// Cycles per scalar ALU instruction.
    pub cycles_per_instr: f64,
    /// Cycles per 128-byte global-memory transaction.
    pub cycles_per_gmem_transaction: f64,
    /// Bytes served by one coalesced global-memory transaction.
    pub gmem_transaction_bytes: f64,
    /// Multiplier on memory transactions when a warp's lanes take different
    /// control paths (uncoalesced access pattern).
    pub uncoalesced_factor: f64,
    /// Cycles per global atomic operation (includes typical contention).
    pub cycles_per_atomic: f64,
    /// Latency-hiding factor: how many warps an SM overlaps effectively.
    /// SM time = (sum of its warp costs) / occupancy_factor.
    pub occupancy_factor: f64,
    /// Result-buffer write strategy (see [`ResultWriteMode`]).
    pub result_write_mode: ResultWriteMode,
    /// Per-lane stash capacity for warp-aggregated writes: a lane staging
    /// more than this many records in one kernel invocation costs extra
    /// warp flushes (`ceil(n / capacity)` per lane, max over lanes).
    pub warp_stash_capacity: usize,
    /// Query-to-thread mapping of the search kernels (see [`KernelShape`]).
    pub kernel_shape: KernelShape,
    /// Maximum candidate entries per work-queue tile in
    /// [`KernelShape::WarpPerTile`]; ignored by `ThreadPerQuery`.
    pub tile_size: usize,
    /// Device-memory layout of segment data (see [`SegmentLayout`]).
    pub segment_layout: SegmentLayout,
    /// Shadow-state sanitizer passes (see [`SanitizerMode`]). `Off` by
    /// default: the device then allocates no shadow state and kernel-visible
    /// behaviour and counters are bit-identical to a sanitizer-free build.
    pub sanitizer: SanitizerMode,
}

impl DeviceConfig {
    /// A validated builder starting from the [`DeviceConfig::tesla_c2075`]
    /// defaults. Prefer this over struct-literal construction: new
    /// cost-model fields get sensible defaults instead of breaking callers.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder { config: DeviceConfig::tesla_c2075() }
    }

    /// A builder seeded from an existing configuration (e.g. a preset).
    pub fn to_builder(&self) -> DeviceConfigBuilder {
        DeviceConfigBuilder { config: self.clone() }
    }

    /// Configuration approximating the paper's NVIDIA Tesla C2075.
    pub fn tesla_c2075() -> Self {
        DeviceConfig {
            name: "Tesla C2075 (simulated)".to_string(),
            num_sms: 14,
            warp_size: 32,
            clock_hz: 1.15e9,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
            // PCIe 2.0 x16: 8 GB/s theoretical, ~6 GB/s effective.
            h2d_bandwidth: 6.0e9,
            d2h_bandwidth: 6.0e9,
            transfer_latency: 15e-6,
            kernel_launch_overhead: 10e-6,
            cycles_per_instr: 1.0,
            // Fermi global-memory latency is 400–800 cycles and the random
            // per-lane segment reads of these kernels coalesce poorly, so a
            // transaction costs far more than its pipelined minimum. 320
            // cycles/transaction with an effective 2-warp overlap calibrates
            // the model to the paper's observed ~1.7e8 segment comparisons
            // per second on this card (Fig. 4–6 response times).
            cycles_per_gmem_transaction: 320.0,
            gmem_transaction_bytes: 128.0,
            uncoalesced_factor: 4.0,
            cycles_per_atomic: 120.0,
            occupancy_factor: 2.0,
            result_write_mode: ResultWriteMode::default(),
            warp_stash_capacity: 16,
            kernel_shape: KernelShape::default(),
            tile_size: 128,
            segment_layout: SegmentLayout::default(),
            sanitizer: SanitizerMode::default(),
        }
    }

    /// A configuration sketching a modern data-centre GPU (A100-class):
    /// more SMs, faster clock and memory, PCIe 4.0, much larger global
    /// memory. Used to evaluate the paper's closing claim that "future
    /// trends for GPU technology (faster host–GPU bandwidth, increased
    /// memory, etc.) will be a further advantage" (§VI).
    pub fn modern_gpu() -> Self {
        DeviceConfig {
            name: "modern GPU (simulated, A100-class)".to_string(),
            num_sms: 108,
            warp_size: 32,
            clock_hz: 1.41e9,
            global_mem_bytes: 40 * 1024 * 1024 * 1024,
            // PCIe 4.0 x16: ~25 GB/s effective.
            h2d_bandwidth: 25.0e9,
            d2h_bandwidth: 25.0e9,
            transfer_latency: 8e-6,
            kernel_launch_overhead: 5e-6,
            cycles_per_instr: 1.0,
            // HBM2 latency is similar in cycles but far better hidden:
            // higher occupancy and many more concurrent transactions.
            cycles_per_gmem_transaction: 160.0,
            gmem_transaction_bytes: 128.0,
            uncoalesced_factor: 3.0,
            cycles_per_atomic: 60.0,
            occupancy_factor: 4.0,
            result_write_mode: ResultWriteMode::default(),
            warp_stash_capacity: 16,
            kernel_shape: KernelShape::default(),
            tile_size: 128,
            segment_layout: SegmentLayout::default(),
            sanitizer: SanitizerMode::default(),
        }
    }

    /// A tiny device for unit tests: 2 SMs, 4-lane warps, small memory, so
    /// overflow and divergence paths are easy to exercise deterministically.
    pub fn test_tiny() -> Self {
        DeviceConfig {
            name: "test-tiny".to_string(),
            num_sms: 2,
            warp_size: 4,
            clock_hz: 1.0e6,
            global_mem_bytes: 1024 * 1024,
            h2d_bandwidth: 1.0e6,
            d2h_bandwidth: 1.0e6,
            transfer_latency: 1e-3,
            kernel_launch_overhead: 2e-3,
            cycles_per_instr: 1.0,
            cycles_per_gmem_transaction: 10.0,
            gmem_transaction_bytes: 16.0,
            uncoalesced_factor: 2.0,
            cycles_per_atomic: 20.0,
            occupancy_factor: 1.0,
            result_write_mode: ResultWriteMode::default(),
            warp_stash_capacity: 4,
            kernel_shape: KernelShape::default(),
            // Small tiles so tiny fixtures still split into several tiles.
            tile_size: 8,
            segment_layout: SegmentLayout::default(),
            sanitizer: SanitizerMode::default(),
        }
    }

    /// Total core count (`num_sms * warp_size` in this simplified model).
    pub fn total_cores(&self) -> usize {
        self.num_sms * self.warp_size
    }

    /// Grid size (in warps) of a persistent [`KernelShape::WarpPerTile`]
    /// launch: one resident warp per latency-hiding slot on every SM, so
    /// the device is exactly filled and every warp stays busy pulling tiles
    /// until the queue drains.
    pub fn persistent_warps(&self) -> usize {
        ((self.num_sms as f64 * self.occupancy_factor).ceil() as usize).max(1)
    }

    /// Simulated duration of a host→device transfer of `bytes`.
    pub fn h2d_seconds(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.transfer_latency + bytes as f64 / self.h2d_bandwidth
    }

    /// Simulated duration of a device→host transfer of `bytes`.
    pub fn d2h_seconds(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.transfer_latency + bytes as f64 / self.d2h_bandwidth
    }

    /// Validate parameter sanity; used by constructors of [`crate::Device`].
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 || self.warp_size == 0 {
            return Err("device must have at least one SM and one lane".into());
        }
        if self.warp_size > 64 {
            // Warp-aggregated commits track dropped lanes in a u64 bitmask.
            return Err("warp size must be at most 64 lanes".into());
        }
        if self.warp_stash_capacity == 0 {
            return Err("warp stash capacity must be at least one record".into());
        }
        if self.tile_size == 0 {
            return Err("tile size must be at least one entry".into());
        }
        if self.clock_hz <= 0.0 || self.clock_hz.is_nan() {
            return Err("clock must be positive".into());
        }
        if !(self.h2d_bandwidth > 0.0 && self.d2h_bandwidth > 0.0) {
            return Err("bandwidths must be positive".into());
        }
        if self.occupancy_factor <= 0.0 || self.occupancy_factor.is_nan() {
            return Err("occupancy factor must be positive".into());
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::tesla_c2075()
    }
}

/// Builder for [`DeviceConfig`]; obtained from [`DeviceConfig::builder`] or
/// [`DeviceConfig::to_builder`]. Unset fields keep the seed configuration's
/// values, so adding cost-model parameters is not a breaking change for
/// builder users. [`DeviceConfigBuilder::build`] validates the result.
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    config: DeviceConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, value: $ty) -> Self {
                self.config.$field = value;
                self
            }
        )*
    };
}

impl DeviceConfigBuilder {
    builder_setters! {
        /// Number of streaming multiprocessors.
        num_sms: usize,
        /// Lanes per warp (at most 64).
        warp_size: usize,
        /// Core clock in Hz.
        clock_hz: f64,
        /// Global memory capacity in bytes.
        global_mem_bytes: usize,
        /// Host→device bandwidth in bytes/second.
        h2d_bandwidth: f64,
        /// Device→host bandwidth in bytes/second.
        d2h_bandwidth: f64,
        /// Fixed per-transfer latency in seconds.
        transfer_latency: f64,
        /// Fixed per-launch overhead in seconds.
        kernel_launch_overhead: f64,
        /// Cycles per scalar ALU instruction.
        cycles_per_instr: f64,
        /// Cycles per 128-byte global-memory transaction.
        cycles_per_gmem_transaction: f64,
        /// Bytes served by one coalesced global-memory transaction.
        gmem_transaction_bytes: f64,
        /// Memory-transaction multiplier under intra-warp divergence.
        uncoalesced_factor: f64,
        /// Cycles per global atomic operation.
        cycles_per_atomic: f64,
        /// Latency-hiding factor (effective warps overlapped per SM).
        occupancy_factor: f64,
        /// Result-buffer write strategy.
        result_write_mode: ResultWriteMode,
        /// Per-lane stash capacity for warp-aggregated writes.
        warp_stash_capacity: usize,
        /// Query-to-thread mapping of the search kernels.
        kernel_shape: KernelShape,
        /// Maximum candidate entries per work-queue tile.
        tile_size: usize,
        /// Device-memory layout of segment data.
        segment_layout: SegmentLayout,
        /// Shadow-state sanitizer passes.
        sanitizer: SanitizerMode,
    }

    /// Human-readable device name (appears in reports).
    pub fn name(mut self, value: impl Into<String>) -> Self {
        self.config.name = value.into();
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<DeviceConfig, SearchError> {
        self.config.validate().map_err(SearchError::InvalidConfig)?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2075_shape() {
        let c = DeviceConfig::tesla_c2075();
        assert_eq!(c.total_cores(), 448);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn modern_gpu_is_strictly_better() {
        let old = DeviceConfig::tesla_c2075();
        let new = DeviceConfig::modern_gpu();
        assert!(new.validate().is_ok());
        assert!(new.total_cores() > old.total_cores());
        assert!(new.h2d_bandwidth > old.h2d_bandwidth);
        assert!(new.global_mem_bytes > old.global_mem_bytes);
        assert!(new.kernel_launch_overhead < old.kernel_launch_overhead);
        // Same workload must be simulated faster end to end.
        assert!(new.h2d_seconds(1 << 20) < old.h2d_seconds(1 << 20));
    }

    #[test]
    fn transfer_costs() {
        let c = DeviceConfig::test_tiny();
        assert_eq!(c.h2d_seconds(0), 0.0);
        // latency + 1e6 bytes / 1e6 B/s = 1e-3 + 1.0
        assert!((c.h2d_seconds(1_000_000) - 1.001).abs() < 1e-12);
        assert!((c.d2h_seconds(500_000) - 0.501).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = DeviceConfig::test_tiny();
        c.num_sms = 0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::test_tiny();
        c.clock_hz = 0.0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::test_tiny();
        c.occupancy_factor = 0.0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::test_tiny();
        c.h2d_bandwidth = -1.0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::test_tiny();
        c.warp_size = 65;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::test_tiny();
        c.warp_stash_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::test_tiny();
        c.tile_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn thread_per_query_is_the_default_shape() {
        for c in
            [DeviceConfig::tesla_c2075(), DeviceConfig::modern_gpu(), DeviceConfig::test_tiny()]
        {
            assert_eq!(c.kernel_shape, KernelShape::ThreadPerQuery);
            assert!(c.tile_size >= 1);
        }
        // One resident warp per latency-hiding slot on every SM.
        assert_eq!(DeviceConfig::tesla_c2075().persistent_warps(), 28);
        assert_eq!(DeviceConfig::test_tiny().persistent_warps(), 2);
        assert_eq!(DeviceConfig::modern_gpu().persistent_warps(), 432);
    }

    #[test]
    fn builder_overrides_and_validates() {
        let c = DeviceConfig::builder()
            .name("custom")
            .num_sms(4)
            .kernel_shape(KernelShape::WarpPerTile)
            .tile_size(16)
            .build()
            .unwrap();
        assert_eq!(c.name, "custom");
        assert_eq!(c.num_sms, 4);
        assert_eq!(c.kernel_shape, KernelShape::WarpPerTile);
        assert_eq!(c.tile_size, 16);
        // Unset fields keep the tesla_c2075 seed.
        assert_eq!(c.warp_size, DeviceConfig::tesla_c2075().warp_size);

        let err = DeviceConfig::builder().warp_size(0).build().unwrap_err();
        assert!(matches!(err, SearchError::InvalidConfig(_)));

        // Seeding from a preset keeps that preset's values.
        let tiny = DeviceConfig::test_tiny().to_builder().tile_size(4).build().unwrap();
        assert_eq!(tiny.num_sms, 2);
        assert_eq!(tiny.tile_size, 4);
    }

    #[test]
    fn columnar_layout_is_the_default() {
        for c in
            [DeviceConfig::tesla_c2075(), DeviceConfig::modern_gpu(), DeviceConfig::test_tiny()]
        {
            assert_eq!(c.segment_layout, SegmentLayout::Columnar);
        }
        let aos = DeviceConfig::builder().segment_layout(SegmentLayout::Aos).build().unwrap();
        assert_eq!(aos.segment_layout, SegmentLayout::Aos);
    }

    #[test]
    fn warp_aggregation_is_the_default() {
        for c in
            [DeviceConfig::tesla_c2075(), DeviceConfig::modern_gpu(), DeviceConfig::test_tiny()]
        {
            assert_eq!(c.result_write_mode, ResultWriteMode::WarpAggregated);
            assert!(c.warp_stash_capacity >= 1);
        }
    }
}
