//! Per-lane cost counters.

use serde::{Deserialize, Serialize};

/// Cost counters accumulated by one lane (GPU thread) during a kernel, and
/// also the aggregate over warps/launches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Scalar ALU instructions (arithmetic, comparisons, address math).
    pub instructions: u64,
    /// Bytes read from global memory.
    pub gmem_read_bytes: u64,
    /// Bytes written to global memory.
    pub gmem_write_bytes: u64,
    /// Global atomic operations.
    pub atomics: u64,
}

impl Counters {
    /// Component-wise sum.
    pub fn add(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.gmem_read_bytes += other.gmem_read_bytes;
        self.gmem_write_bytes += other.gmem_write_bytes;
        self.atomics += other.atomics;
    }

    /// Component-wise maximum (used for the SIMT max-over-lanes reduction).
    pub fn max(&self, other: &Counters) -> Counters {
        Counters {
            instructions: self.instructions.max(other.instructions),
            gmem_read_bytes: self.gmem_read_bytes.max(other.gmem_read_bytes),
            gmem_write_bytes: self.gmem_write_bytes.max(other.gmem_write_bytes),
            atomics: self.atomics.max(other.atomics),
        }
    }

    /// True if nothing was recorded.
    pub fn is_zero(&self) -> bool {
        *self == Counters::default()
    }
}

/// The execution context handed to a kernel closure, one per GPU thread.
///
/// A kernel records its costs through this handle; the launch machinery
/// reduces lane counters into warp costs (see [`crate::launch`]). The `path`
/// tag models control-flow divergence: lanes of one warp that end the kernel
/// with different tags are assumed to have taken different branches, and the
/// warp is charged the serialisation penalty.
#[derive(Debug)]
pub struct Lane {
    /// Global thread id (`blockIdx * blockDim + threadIdx` equivalent).
    pub global_id: usize,
    pub(crate) lane_index: usize,
    pub(crate) counters: Counters,
    pub(crate) path: u64,
}

impl Lane {
    /// Create a standalone lane. Kernels receive lanes from the launch
    /// machinery; this constructor exists so device-side helpers can be unit
    /// tested without a launch. The lane index is derived as
    /// `global_id % 64` (the maximum warp width); launched lanes get their
    /// true in-warp index from the launch machinery instead.
    pub fn new(global_id: usize) -> Self {
        Lane::at(global_id, global_id % 64)
    }

    /// Create a lane with an explicit in-warp index (launch machinery).
    pub(crate) fn at(global_id: usize, lane_index: usize) -> Self {
        Lane { global_id, lane_index, counters: Counters::default(), path: 0 }
    }

    /// Index of this lane within its warp (`threadIdx % warpSize`).
    #[inline]
    pub fn lane_index(&self) -> usize {
        self.lane_index
    }

    /// Record `n` scalar ALU instructions.
    #[inline]
    pub fn instr(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// Record a global-memory read of `bytes`.
    #[inline]
    pub fn gmem_read(&mut self, bytes: u64) {
        self.counters.gmem_read_bytes += bytes;
    }

    /// Record a global-memory write of `bytes`.
    #[inline]
    pub fn gmem_write(&mut self, bytes: u64) {
        self.counters.gmem_write_bytes += bytes;
    }

    /// Record one global atomic operation.
    #[inline]
    pub fn atomic(&mut self) {
        self.counters.atomics += 1;
    }

    /// Tag the control path this lane has taken. Combine tags from nested
    /// branches by calling this repeatedly; the tag sequence is hashed so
    /// `set_path(a); set_path(b)` differs from `set_path(b); set_path(a)`.
    #[inline]
    pub fn set_path(&mut self, tag: u64) {
        // FNV-style mix so successive tags compose into one path id.
        self.path = self.path.wrapping_mul(0x100000001b3).wrapping_add(tag ^ 0xcbf29ce484222325);
    }

    /// Counters recorded so far (for tests and nested helpers).
    #[inline]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Current path tag.
    #[inline]
    pub fn path(&self) -> u64 {
        self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_arithmetic() {
        let mut a =
            Counters { instructions: 1, gmem_read_bytes: 2, gmem_write_bytes: 3, atomics: 4 };
        let b = Counters { instructions: 10, gmem_read_bytes: 1, gmem_write_bytes: 30, atomics: 2 };
        assert_eq!(
            a.max(&b),
            Counters { instructions: 10, gmem_read_bytes: 2, gmem_write_bytes: 30, atomics: 4 }
        );
        a.add(&b);
        assert_eq!(
            a,
            Counters { instructions: 11, gmem_read_bytes: 3, gmem_write_bytes: 33, atomics: 6 }
        );
        assert!(!a.is_zero());
        assert!(Counters::default().is_zero());
    }

    #[test]
    fn lane_records() {
        let mut l = Lane::new(7);
        l.instr(5);
        l.gmem_read(64);
        l.gmem_write(8);
        l.atomic();
        assert_eq!(l.global_id, 7);
        assert_eq!(
            *l.counters(),
            Counters { instructions: 5, gmem_read_bytes: 64, gmem_write_bytes: 8, atomics: 1 }
        );
    }

    #[test]
    fn path_tags_compose_order_sensitively() {
        let mut a = Lane::new(0);
        let mut b = Lane::new(1);
        a.set_path(1);
        a.set_path(2);
        b.set_path(2);
        b.set_path(1);
        assert_ne!(a.path(), b.path());
        let mut c = Lane::new(2);
        c.set_path(1);
        c.set_path(2);
        assert_eq!(a.path(), c.path());
    }
}
