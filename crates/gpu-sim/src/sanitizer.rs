//! Shadow-state device sanitizer: memcheck + racecheck for the simulated GPU.
//!
//! The simulated device executes kernels as real Rust closures, so the
//! classic GPU failure modes — out-of-bounds accesses, reads of
//! uninitialized memory, write-write races between lanes, records silently
//! lost to result-buffer overflow — either panic the host process or, worse,
//! stay invisible while corrupting counters and results. This module is the
//! software analogue of NVIDIA's `compute-sanitizer`: a shadow-state layer
//! that every memory type in [`crate::memory`] reports into when the device
//! was created with a non-[`SanitizerMode::Off`]
//! [`crate::DeviceConfig::sanitizer`].
//!
//! Two passes exist, combinable via [`SanitizerMode::Full`]:
//!
//! * **Memcheck** — per-buffer shadow bookkeeping: out-of-bounds reads and
//!   writes (recorded and neutralised instead of panicking, so one run can
//!   surface many findings), reads of never-written scratch words, malformed
//!   work-queue tiles (`hi < lo`, which would underflow [`crate::Tile::len`]),
//!   device→host transfer accounting mismatches (bytes charged to the ledger
//!   vs bytes actually drained), and a live-allocation registry that exposes
//!   leaked buffers.
//! * **Racecheck** — per-launch access sets. Scatter-buffer writes are logged
//!   as `(buffer, offset, origin)`; at launch end, slots written more than
//!   once become [`FindingKind::WriteWriteRace`] (distinct origins) or
//!   [`FindingKind::DoubleWrite`] (one origin writing twice). Accesses
//!   *ordered by an atomic* are blessed and never logged: result-buffer
//!   cursor `fetch_add`s ([`crate::ResultBuffer`]/[`crate::WarpStash`]) and
//!   work-queue tile grabs hand out unique indices by construction.
//!   Racecheck also performs **lost-record accounting**: a stash commit that
//!   drops records (`lost > 0`) must be acknowledged — either by a later
//!   commit of the same warp storing redo ids into another buffer (the
//!   device-side redo protocol of `tdts-kernels`), or by the host observing
//!   the overflow flag ([`crate::ResultBuffer::overflowed`], the host-side
//!   batch-halving protocol). Unacknowledged losses surface as
//!   [`FindingKind::LostRecords`].
//!
//! Findings are structured [`Finding`]s (buffer name, word offset, launch
//! id, kernel shape, conflicting lanes) collected into a
//! [`SanitizerReport`]; searches surface the per-search count on
//! `SearchReport::sanitizer_findings` and tests hard-fail via
//! [`crate::Device::assert_sanitizer_clean`].
//!
//! When the mode is `Off` the device holds no `Sanitizer` at all: no shadow
//! allocations exist, no access is logged, and the simulated cost counters
//! are byte-identical to a build without this module.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Which sanitizer passes a device runs (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SanitizerMode {
    /// No shadow state, no checks, zero overhead (the default).
    #[default]
    Off,
    /// Bounds / initialization / transfer / tile checks only.
    Memcheck,
    /// Per-launch access-set race checks and lost-record accounting only.
    Racecheck,
    /// Both passes.
    Full,
}

impl SanitizerMode {
    /// True when memcheck-class detectors are active.
    #[inline]
    pub fn memcheck(self) -> bool {
        matches!(self, SanitizerMode::Memcheck | SanitizerMode::Full)
    }

    /// True when racecheck-class detectors are active.
    #[inline]
    pub fn racecheck(self) -> bool {
        matches!(self, SanitizerMode::Racecheck | SanitizerMode::Full)
    }

    /// True when no detector is active.
    #[inline]
    pub fn is_off(self) -> bool {
        self == SanitizerMode::Off
    }

    /// Parse a mode name as used by CLI flags and `TDTS_SANITIZER`.
    pub fn parse(s: &str) -> Option<SanitizerMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(SanitizerMode::Off),
            "memcheck" => Some(SanitizerMode::Memcheck),
            "racecheck" => Some(SanitizerMode::Racecheck),
            "full" => Some(SanitizerMode::Full),
            _ => None,
        }
    }

    /// Mode requested through the `TDTS_SANITIZER` environment variable
    /// (`off`/`memcheck`/`racecheck`/`full`), if set and well-formed. Never
    /// consulted implicitly: callers (tests, CLI) opt in explicitly.
    pub fn from_env() -> Option<SanitizerMode> {
        std::env::var("TDTS_SANITIZER").ok().and_then(|v| SanitizerMode::parse(&v))
    }
}

impl fmt::Display for SanitizerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SanitizerMode::Off => "off",
            SanitizerMode::Memcheck => "memcheck",
            SanitizerMode::Racecheck => "racecheck",
            SanitizerMode::Full => "full",
        })
    }
}

/// Who performed a tracked access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Origin {
    /// Host-side code (uploads, drains, tile construction).
    Host,
    /// A kernel lane, identified by its global thread id.
    Lane(usize),
    /// A warp epilogue (staged commit), identified by the warp index —
    /// unique per launch even under persistent tiling, where lane global
    /// ids repeat across tiles.
    Warp(usize),
}

impl Origin {
    fn id(self) -> Option<usize> {
        match self {
            Origin::Host => None,
            Origin::Lane(g) | Origin::Warp(g) => Some(g),
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Host => f.write_str("host"),
            Origin::Lane(g) => write!(f, "lane {g}"),
            Origin::Warp(w) => write!(f, "warp {w}"),
        }
    }
}

/// Classification of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FindingKind {
    /// A kernel read past a buffer's length (memcheck).
    OutOfBoundsRead,
    /// A kernel write past a buffer's capacity (memcheck).
    OutOfBoundsWrite,
    /// A read of a scratch/scatter word that was never written (memcheck).
    UninitializedRead,
    /// Two different origins wrote the same slot in one launch (racecheck).
    WriteWriteRace,
    /// One origin wrote the same slot twice in one launch (racecheck).
    DoubleWrite,
    /// A stash commit dropped records and neither a device-side redo commit
    /// nor a host overflow check acknowledged them (racecheck).
    LostRecords,
    /// A work-queue tile with `hi < lo` (memcheck).
    MalformedTile,
    /// Device→host bytes charged to the ledger disagree with bytes actually
    /// drained from device buffers (memcheck).
    TransferMismatch,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FindingKind::OutOfBoundsRead => "out-of-bounds-read",
            FindingKind::OutOfBoundsWrite => "out-of-bounds-write",
            FindingKind::UninitializedRead => "uninitialized-read",
            FindingKind::WriteWriteRace => "write-write-race",
            FindingKind::DoubleWrite => "double-write",
            FindingKind::LostRecords => "lost-records",
            FindingKind::MalformedTile => "malformed-tile",
            FindingKind::TransferMismatch => "transfer-mismatch",
        })
    }
}

/// One structured sanitizer diagnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// Name of the buffer involved, e.g. `ScatterBuffer<u32>#3`.
    pub buffer: String,
    /// Word offset within the buffer (tile position for
    /// [`FindingKind::MalformedTile`], 0 when not applicable).
    pub offset: usize,
    /// 1-based id of the launch during which the access happened (the
    /// number of launches so far, for host-side findings).
    pub launch: u64,
    /// Kernel shape label of that launch (`static-grid`,
    /// `persistent-warp-per-tile`, or `host`).
    pub shape: String,
    /// Conflicting lane global ids (warp indices for warp-scoped origins),
    /// sorted.
    pub lanes: Vec<usize>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} offset {} (launch {}, shape {}, lanes {:?}): {}",
            self.kind, self.buffer, self.offset, self.launch, self.shape, self.lanes, self.detail
        )
    }
}

/// Snapshot of everything the sanitizer knows, retrievable via
/// [`crate::Device::sanitizer_report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanitizerReport {
    /// The mode the device runs under.
    pub mode: SanitizerMode,
    /// Kernel launches observed so far.
    pub launches: u64,
    /// All findings, in deterministic order.
    pub findings: Vec<Finding>,
    /// Names of buffers currently registered (informational: buffers held
    /// alive by an engine are expected here; buffers that outlive every
    /// owner — e.g. via `mem::forget` — are leaks).
    pub live_allocations: Vec<String>,
    /// Device→host bytes charged to the response-time ledger (memcheck).
    pub d2h_charged_bytes: u64,
    /// Device→host bytes actually drained from device buffers (memcheck).
    pub d2h_drained_bytes: u64,
}

impl SanitizerReport {
    /// True when no finding was recorded.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sanitizer({}): {} finding(s) over {} launch(es), {} live allocation(s)",
            self.mode,
            self.findings.len(),
            self.launches,
            self.live_allocations.len()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// `std::any::type_name` without the module path (generic arguments of the
/// tracked buffer types are plain identifiers, so splitting on `::` is safe).
pub(crate) fn short_type_name<T>() -> &'static str {
    let full = std::any::type_name::<T>();
    full.rsplit("::").next().unwrap_or(full)
}

#[derive(Debug, Clone)]
struct Alloc {
    name: String,
}

#[derive(Debug, Clone, Copy)]
struct CommitEvent {
    warp: usize,
    buffer: u64,
    stored: u64,
    lost: u64,
}

#[derive(Debug)]
struct CurrentLaunch {
    id: u64,
    shape: &'static str,
    /// Scatter-write log: `(buffer id, slot) -> origins that wrote it`.
    writes: BTreeMap<(u64, usize), Vec<Origin>>,
    /// Stash-commit log, in push order (sequential within each warp).
    commits: Vec<CommitEvent>,
}

/// A commit loss that no redo commit acknowledged inside its launch; cleared
/// when the host checks the buffer's overflow flag, otherwise reported as
/// [`FindingKind::LostRecords`].
#[derive(Debug, Clone)]
struct PendingLoss {
    buffer: u64,
    name: String,
    warp: usize,
    launch: u64,
    shape: &'static str,
    lost: u64,
}

#[derive(Debug, Default)]
struct State {
    next_id: u64,
    allocs: BTreeMap<u64, Alloc>,
    launches: u64,
    current: Option<CurrentLaunch>,
    pending_losses: Vec<PendingLoss>,
    findings: Vec<Finding>,
    /// Findings already consumed by a `checkpoint()` (per-search deltas).
    checkpoint: usize,
    d2h_charged: u64,
    d2h_drained: u64,
    /// The charged-minus-drained byte delta already reported, so a persistent
    /// mismatch produces one finding, not one per checkpoint.
    flagged_transfer_diff: i64,
}

impl State {
    fn buffer_name(&self, id: u64) -> String {
        self.allocs.get(&id).map_or_else(|| format!("buffer#{id}"), |a| a.name.clone())
    }

    fn launch_context(&self) -> (u64, &'static str) {
        self.current.as_ref().map_or((self.launches, "host"), |c| (c.id, c.shape))
    }

    fn transfer_diff(&self) -> i64 {
        self.d2h_charged as i64 - self.d2h_drained as i64
    }

    fn transfer_finding(&self) -> Finding {
        Finding {
            kind: FindingKind::TransferMismatch,
            buffer: "d2h transfers".to_string(),
            offset: 0,
            launch: self.launches,
            shape: "host".to_string(),
            lanes: Vec::new(),
            detail: format!(
                "{} bytes charged to the ledger vs {} bytes drained from device buffers",
                self.d2h_charged, self.d2h_drained
            ),
        }
    }
}

fn loss_finding(p: &PendingLoss) -> Finding {
    Finding {
        kind: FindingKind::LostRecords,
        buffer: p.name.clone(),
        offset: 0,
        launch: p.launch,
        shape: p.shape.to_string(),
        lanes: vec![p.warp],
        detail: format!(
            "commit by warp {} dropped {} record(s) and neither a redo commit nor a host \
             overflow check acknowledged them",
            p.warp, p.lost
        ),
    }
}

/// The shadow-state engine. One per [`crate::Device`] (absent when the mode
/// is [`SanitizerMode::Off`]); all memory types report into it through
/// crate-internal `ShadowRef` handles handed out at registration.
#[derive(Debug)]
pub struct Sanitizer {
    mode: SanitizerMode,
    state: Mutex<State>,
}

impl Sanitizer {
    pub(crate) fn new(mode: SanitizerMode) -> Sanitizer {
        Sanitizer { mode, state: Mutex::new(State::default()) }
    }

    /// The active mode.
    pub fn mode(&self) -> SanitizerMode {
        self.mode
    }

    fn register(&self, kind: &'static str, ty: &'static str, _len: usize) -> u64 {
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.allocs.insert(id, Alloc { name: format!("{kind}<{ty}>#{id}") });
        id
    }

    fn deregister(&self, id: u64) {
        self.state.lock().allocs.remove(&id);
    }

    fn record(
        &self,
        kind: FindingKind,
        buffer: u64,
        offset: usize,
        origin: Origin,
        detail: String,
    ) {
        let mut st = self.state.lock();
        let (launch, shape) = st.launch_context();
        let buffer = st.buffer_name(buffer);
        st.findings.push(Finding {
            kind,
            buffer,
            offset,
            launch,
            shape: shape.to_string(),
            lanes: origin.id().into_iter().collect(),
            detail,
        });
    }

    pub(crate) fn begin_launch(&self, shape: &'static str) {
        let mut st = self.state.lock();
        st.launches += 1;
        let id = st.launches;
        st.current =
            Some(CurrentLaunch { id, shape, writes: BTreeMap::new(), commits: Vec::new() });
    }

    pub(crate) fn end_launch(&self) {
        let mut st = self.state.lock();
        let Some(launch) = st.current.take() else { return };

        // Race analysis: slots written more than once. The write log is a
        // BTreeMap and origins are sorted, so finding order is deterministic
        // whatever the host thread interleaving was.
        for ((buf, offset), mut origins) in launch.writes {
            if origins.len() < 2 {
                continue;
            }
            origins.sort_unstable();
            let all_same = origins.windows(2).all(|w| w[0] == w[1]);
            let kind =
                if all_same { FindingKind::DoubleWrite } else { FindingKind::WriteWriteRace };
            let mut lanes: Vec<usize> = origins.iter().filter_map(|o| o.id()).collect();
            lanes.dedup();
            let writers = origins.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
            let buffer = st.buffer_name(buf);
            st.findings.push(Finding {
                kind,
                buffer,
                offset,
                launch: launch.id,
                shape: launch.shape.to_string(),
                lanes,
                detail: format!("{} writes to the same slot by {writers}", origins.len()),
            });
        }

        // Lost-record accounting: a commit with losses is acknowledged
        // inside the launch by a *later* commit of the same warp that stores
        // records into a different buffer (redo-id staging). Within one warp
        // the commit log is in execution order, so the scan is deterministic
        // even though warps interleave in the log.
        let mut pending = Vec::new();
        for (i, e) in launch.commits.iter().enumerate() {
            if e.lost == 0 {
                continue;
            }
            let acked = launch.commits[i + 1..]
                .iter()
                .any(|f| f.warp == e.warp && f.buffer != e.buffer && f.stored > 0);
            if !acked {
                pending.push(PendingLoss {
                    buffer: e.buffer,
                    name: st.buffer_name(e.buffer),
                    warp: e.warp,
                    launch: launch.id,
                    shape: launch.shape,
                    lost: e.lost,
                });
            }
        }
        pending.sort_by_key(|a| (a.warp, a.buffer));
        st.pending_losses.extend(pending);
    }

    pub(crate) fn note_d2h_charged(&self, bytes: u64) {
        if self.mode.memcheck() {
            self.state.lock().d2h_charged += bytes;
        }
    }

    pub(crate) fn note_malformed_tile(&self, pos: usize, query: u32, lo: u32, hi: u32) {
        if !self.mode.memcheck() {
            return;
        }
        let mut st = self.state.lock();
        let launches = st.launches;
        st.findings.push(Finding {
            kind: FindingKind::MalformedTile,
            buffer: "work-queue tiles".to_string(),
            offset: pos,
            launch: launches,
            shape: "host".to_string(),
            lanes: Vec::new(),
            detail: format!("tile {pos} for query {query} has hi {hi} < lo {lo}"),
        });
    }

    /// Materialize pending losses and transfer mismatches, then return the
    /// number of findings recorded since the previous checkpoint. Called at
    /// the end of every search; `SearchReport::sanitizer_findings` carries
    /// the delta so merged reports sum correctly.
    pub(crate) fn checkpoint(&self) -> u64 {
        let mut st = self.state.lock();
        let pending = std::mem::take(&mut st.pending_losses);
        for p in &pending {
            st.findings.push(loss_finding(p));
        }
        let diff = st.transfer_diff();
        if self.mode.memcheck() && diff != 0 && diff != st.flagged_transfer_diff {
            let f = st.transfer_finding();
            st.findings.push(f);
            st.flagged_transfer_diff = diff;
        }
        let delta = st.findings.len() - st.checkpoint;
        st.checkpoint = st.findings.len();
        delta as u64
    }

    /// Snapshot everything known so far. Non-destructive: pending losses and
    /// an unflagged transfer mismatch are synthesized into the returned
    /// report without being consumed.
    pub fn report(&self) -> SanitizerReport {
        let st = self.state.lock();
        let mut findings = st.findings.clone();
        findings.extend(st.pending_losses.iter().map(loss_finding));
        let diff = st.transfer_diff();
        if self.mode.memcheck() && diff != 0 && diff != st.flagged_transfer_diff {
            findings.push(st.transfer_finding());
        }
        SanitizerReport {
            mode: self.mode,
            launches: st.launches,
            findings,
            live_allocations: st.allocs.values().map(|a| a.name.clone()).collect(),
            d2h_charged_bytes: st.d2h_charged,
            d2h_drained_bytes: st.d2h_drained,
        }
    }
}

/// Per-buffer handle into the device's [`Sanitizer`], held by each
/// [`crate::memory`] reservation. All methods are cheap no-ops for the
/// passes the mode disables; buffers never consult the sanitizer on their
/// in-bounds hot paths at all.
#[derive(Debug, Clone)]
pub(crate) struct ShadowRef {
    san: Arc<Sanitizer>,
    id: u64,
}

impl ShadowRef {
    pub(crate) fn new(
        san: &Arc<Sanitizer>,
        kind: &'static str,
        ty: &'static str,
        len: usize,
    ) -> ShadowRef {
        ShadowRef { san: Arc::clone(san), id: san.register(kind, ty, len) }
    }

    pub(crate) fn release(&self) {
        self.san.deregister(self.id);
    }

    #[inline]
    pub(crate) fn racecheck(&self) -> bool {
        self.san.mode.racecheck()
    }

    /// Record an out-of-bounds read; `false` when memcheck is inactive (the
    /// caller then preserves the panicking behaviour).
    pub(crate) fn oob_read(&self, offset: usize, origin: Origin, len: usize) -> bool {
        if !self.san.mode.memcheck() {
            return false;
        }
        self.san.record(
            FindingKind::OutOfBoundsRead,
            self.id,
            offset,
            origin,
            format!("read at {offset} beyond length {len}"),
        );
        true
    }

    /// Record an out-of-bounds write; `false` when memcheck is inactive.
    pub(crate) fn oob_write(&self, offset: usize, origin: Origin, capacity: usize) -> bool {
        if !self.san.mode.memcheck() {
            return false;
        }
        self.san.record(
            FindingKind::OutOfBoundsWrite,
            self.id,
            offset,
            origin,
            format!("write at {offset} beyond capacity {capacity}"),
        );
        true
    }

    /// Record a read of a never-written word; `false` when memcheck is
    /// inactive.
    pub(crate) fn uninit_read(&self, offset: usize, origin: Origin, initialized: usize) -> bool {
        if !self.san.mode.memcheck() {
            return false;
        }
        self.san.record(
            FindingKind::UninitializedRead,
            self.id,
            offset,
            origin,
            format!("read at {offset} but only {initialized} word(s) were written"),
        );
        true
    }

    /// Log a scatter write into the current launch's access set (racecheck).
    pub(crate) fn log_scatter_write(&self, offset: usize, origin: Origin) {
        if !self.san.mode.racecheck() {
            return;
        }
        let mut st = self.san.state.lock();
        if let Some(cur) = st.current.as_mut() {
            cur.writes.entry((self.id, offset)).or_default().push(origin);
        }
    }

    /// Log a stash commit's stored/lost counts for the current launch
    /// (racecheck lost-record accounting).
    pub(crate) fn log_commit(&self, warp: usize, stored: u64, lost: u64) {
        if !self.san.mode.racecheck() || (stored == 0 && lost == 0) {
            return;
        }
        let mut st = self.san.state.lock();
        if let Some(cur) = st.current.as_mut() {
            cur.commits.push(CommitEvent { warp, buffer: self.id, stored, lost });
        }
    }

    /// The host checked this buffer's overflow flag: pending losses on it
    /// are acknowledged (host-driven redo, e.g. batch halving).
    pub(crate) fn ack_losses(&self) {
        if !self.san.mode.racecheck() {
            return;
        }
        self.san.state.lock().pending_losses.retain(|p| p.buffer != self.id);
    }

    /// Record bytes drained to the host (memcheck transfer accounting).
    pub(crate) fn note_drained(&self, bytes: u64) {
        if self.san.mode.memcheck() {
            self.san.state.lock().d2h_drained += bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates_and_parse() {
        assert!(SanitizerMode::Off.is_off());
        assert!(!SanitizerMode::Off.memcheck() && !SanitizerMode::Off.racecheck());
        assert!(SanitizerMode::Memcheck.memcheck() && !SanitizerMode::Memcheck.racecheck());
        assert!(!SanitizerMode::Racecheck.memcheck() && SanitizerMode::Racecheck.racecheck());
        assert!(SanitizerMode::Full.memcheck() && SanitizerMode::Full.racecheck());
        assert_eq!(SanitizerMode::parse("full"), Some(SanitizerMode::Full));
        assert_eq!(SanitizerMode::parse(" MemCheck "), Some(SanitizerMode::Memcheck));
        assert_eq!(SanitizerMode::parse("racecheck"), Some(SanitizerMode::Racecheck));
        assert_eq!(SanitizerMode::parse("off"), Some(SanitizerMode::Off));
        assert_eq!(SanitizerMode::parse("bogus"), None);
        assert_eq!(SanitizerMode::Full.to_string(), "full");
    }

    #[test]
    fn registry_tracks_live_allocations() {
        let san = Arc::new(Sanitizer::new(SanitizerMode::Full));
        let a = ShadowRef::new(&san, "DeviceBuffer", "u32", 8);
        let b = ShadowRef::new(&san, "ResultBuffer", "u64", 4);
        let report = san.report();
        assert_eq!(report.live_allocations, vec!["DeviceBuffer<u32>#0", "ResultBuffer<u64>#1"]);
        a.release();
        assert_eq!(san.report().live_allocations, vec!["ResultBuffer<u64>#1"]);
        b.release();
        assert!(san.report().live_allocations.is_empty());
        assert!(san.report().is_clean());
    }

    #[test]
    fn race_analysis_classifies_double_writes_and_races() {
        let san = Arc::new(Sanitizer::new(SanitizerMode::Racecheck));
        let buf = ShadowRef::new(&san, "ScatterBuffer", "u32", 8);
        san.begin_launch("static-grid");
        buf.log_scatter_write(3, Origin::Lane(1));
        buf.log_scatter_write(3, Origin::Lane(5));
        buf.log_scatter_write(6, Origin::Lane(2));
        buf.log_scatter_write(6, Origin::Lane(2));
        buf.log_scatter_write(0, Origin::Lane(0)); // single write: clean
        san.end_launch();
        let report = san.report();
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.findings[0].kind, FindingKind::WriteWriteRace);
        assert_eq!(report.findings[0].offset, 3);
        assert_eq!(report.findings[0].lanes, vec![1, 5]);
        assert_eq!(report.findings[1].kind, FindingKind::DoubleWrite);
        assert_eq!(report.findings[1].offset, 6);
        assert_eq!(report.findings[1].lanes, vec![2]);
        assert_eq!(report.findings[0].launch, 1);
        assert_eq!(report.findings[0].shape, "static-grid");
    }

    #[test]
    fn lost_records_require_acknowledgement() {
        let san = Arc::new(Sanitizer::new(SanitizerMode::Racecheck));
        let results = ShadowRef::new(&san, "ResultBuffer", "u32", 4);
        let redo = ShadowRef::new(&san, "ResultBuffer", "u32", 4);

        // Launch 1: warp 0's loss is acknowledged by its redo commit; warp
        // 1's is not.
        san.begin_launch("static-grid");
        results.log_commit(0, 2, 3);
        redo.log_commit(0, 1, 0);
        results.log_commit(1, 1, 2);
        san.end_launch();
        let report = san.report();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].kind, FindingKind::LostRecords);
        assert_eq!(report.findings[0].lanes, vec![1]);

        // The host checking the overflow flag acknowledges the remainder.
        results.ack_losses();
        assert!(san.report().is_clean());
    }

    #[test]
    fn checkpoint_returns_per_search_deltas() {
        let san = Arc::new(Sanitizer::new(SanitizerMode::Full));
        let buf = ShadowRef::new(&san, "ScatterBuffer", "u32", 8);
        assert_eq!(san.checkpoint(), 0);
        san.begin_launch("static-grid");
        buf.log_scatter_write(1, Origin::Lane(0));
        buf.log_scatter_write(1, Origin::Lane(1));
        san.end_launch();
        assert_eq!(san.checkpoint(), 1);
        assert_eq!(san.checkpoint(), 0, "no new findings since the last checkpoint");
        // Unacknowledged losses materialize at the checkpoint.
        san.begin_launch("static-grid");
        buf.log_commit(0, 0, 4);
        san.end_launch();
        assert_eq!(san.checkpoint(), 1);
        assert_eq!(san.report().findings.len(), 2);
    }

    #[test]
    fn transfer_mismatch_is_flagged_once_per_delta() {
        let san = Arc::new(Sanitizer::new(SanitizerMode::Memcheck));
        let buf = ShadowRef::new(&san, "ResultBuffer", "u32", 8);
        san.note_d2h_charged(32);
        buf.note_drained(32);
        assert_eq!(san.checkpoint(), 0, "balanced transfers are clean");
        san.note_d2h_charged(16);
        assert_eq!(san.checkpoint(), 1);
        assert_eq!(san.checkpoint(), 0, "a stale mismatch is not re-reported");
        let report = san.report();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].kind, FindingKind::TransferMismatch);
        assert_eq!(report.d2h_charged_bytes, 48);
        assert_eq!(report.d2h_drained_bytes, 32);
    }

    #[test]
    fn off_mode_logs_nothing() {
        let san = Arc::new(Sanitizer::new(SanitizerMode::Off));
        let buf = ShadowRef::new(&san, "ScatterBuffer", "u32", 8);
        san.begin_launch("static-grid");
        assert!(!buf.oob_read(9, Origin::Lane(0), 8));
        assert!(!buf.oob_write(9, Origin::Lane(0), 8));
        assert!(!buf.uninit_read(1, Origin::Host, 0));
        buf.log_scatter_write(1, Origin::Lane(0));
        buf.log_scatter_write(1, Origin::Lane(1));
        buf.log_commit(0, 0, 7);
        san.end_launch();
        san.note_d2h_charged(100);
        assert!(san.report().is_clean());
        assert_eq!(san.checkpoint(), 0);
    }

    #[test]
    fn short_type_names() {
        assert_eq!(short_type_name::<u32>(), "u32");
        assert_eq!(short_type_name::<SanitizerMode>(), "SanitizerMode");
    }
}
