//! Response-time accounting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Phases of a distance threshold search that contribute to response time.
///
/// The paper's response time excludes index construction and the initial
/// storage of the database `D` on the GPU (§V-B); the engine therefore only
/// records phases that occur between receiving the query set and returning
/// the final result set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Host-side computation (query sorting, schedule construction, dedup).
    HostCompute,
    /// Host→device transfers of the query set, schedules, redo lists.
    HostToDevice,
    /// Fixed driver overhead per kernel invocation.
    KernelLaunch,
    /// Simulated kernel execution time.
    KernelExec,
    /// Device→host transfers of result sets and redo queues.
    DeviceToHost,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::HostCompute,
        Phase::HostToDevice,
        Phase::KernelLaunch,
        Phase::KernelExec,
        Phase::DeviceToHost,
    ];

    fn index(self) -> usize {
        match self {
            Phase::HostCompute => 0,
            Phase::HostToDevice => 1,
            Phase::KernelLaunch => 2,
            Phase::KernelExec => 3,
            Phase::DeviceToHost => 4,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::HostCompute => "host-compute",
            Phase::HostToDevice => "h2d",
            Phase::KernelLaunch => "kernel-launch",
            Phase::KernelExec => "kernel-exec",
            Phase::DeviceToHost => "d2h",
        };
        f.write_str(s)
    }
}

/// Accumulated simulated response time, broken down by [`Phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseTime {
    seconds: [f64; 5],
    /// Number of kernel invocations recorded (the paper reports re-invocation
    /// counts for `GPUSpatial` and incremental processing).
    pub kernel_invocations: u32,
    /// Bytes moved host→device (query sets, schedules, redo lists). The
    /// sanitizer's transfer-mismatch check compares these against drained
    /// shadow bytes, and EXPERIMENTS.md reports them alongside times.
    pub h2d_bytes: u64,
    /// Bytes moved device→host (result sets, redo queues).
    pub d2h_bytes: u64,
}

impl ResponseTime {
    /// Zeroed ledger.
    pub fn new() -> Self {
        ResponseTime::default()
    }

    /// Add `secs` to `phase`.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        debug_assert!(secs >= 0.0, "negative duration {secs} for {phase}");
        self.seconds[phase.index()] += secs;
    }

    /// Seconds recorded for `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.seconds[phase.index()]
    }

    /// Total simulated response time.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Component-wise sum of two ledgers.
    pub fn merge(&mut self, other: &ResponseTime) {
        for (a, b) in self.seconds.iter_mut().zip(other.seconds.iter()) {
            *a += b;
        }
        self.kernel_invocations += other.kernel_invocations;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
    }

    /// Fold in the ledger of a search that ran *concurrently* on another
    /// device (one shard of a partitioned store). Transfer bytes and
    /// invocation counts sum — every device really moved those bytes and
    /// launched those kernels — but elapsed simulated time is bounded by
    /// the slowest device (the merge point waits for the last shard), so
    /// the phase breakdown adopts the slower ledger's phases rather than
    /// summing them.
    pub fn merge_concurrent(&mut self, other: &ResponseTime) {
        if other.total() > self.total() {
            self.seconds = other.seconds;
        }
        self.kernel_invocations += other.kernel_invocations;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
    }

    /// Total minus kernel-launch overhead — the paper's "optimistic" curve
    /// for `GPUSpatial` in Fig. 4 discounts re-invocation overhead.
    pub fn total_discounting_launches(&self) -> f64 {
        self.total() - self.get(Phase::KernelLaunch)
    }
}

impl fmt::Display for ResponseTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {:.6}s (", self.total())?;
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p} {:.6}s", self.get(*p))?;
        }
        write!(f, ", {} kernel invocations)", self.kernel_invocations)
    }
}

/// Makespan of a linear pipeline: `jobs[i]` holds the per-stage durations
/// of job `i`; stages are executed in order, a job cannot enter a stage
/// before the previous job left it, and stages work on different jobs
/// concurrently (classic flow-shop with unit buffers).
///
/// Used to model the predecessor algorithm of the paper's \[22\], which
/// streams query batches through upload → kernel → download with
/// overlapped transfers; this paper's schemes avoid that pipeline by
/// keeping `Q` resident.
pub fn pipeline_makespan(jobs: &[[f64; 3]]) -> f64 {
    let mut stage_free = [0.0f64; 3];
    for job in jobs {
        let mut t = 0.0f64; // time this job enters stage 0
        for (s, &dur) in job.iter().enumerate() {
            debug_assert!(dur >= 0.0, "negative stage duration");
            let start = t.max(stage_free[s]);
            let end = start + dur;
            stage_free[s] = end;
            t = end;
        }
    }
    stage_free[2].max(stage_free[1]).max(stage_free[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_single_job_is_sum() {
        assert_eq!(pipeline_makespan(&[[1.0, 2.0, 3.0]]), 6.0);
        assert_eq!(pipeline_makespan(&[]), 0.0);
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // Two identical jobs: second job's stage 0 overlaps first job's
        // stage 1, so makespan < 2 * sum.
        let jobs = [[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]];
        let m = pipeline_makespan(&jobs);
        assert_eq!(m, 4.0); // 3 + 1, perfect overlap
        assert!(m < 6.0);
    }

    #[test]
    fn pipeline_bottleneck_stage_dominates() {
        // Kernel (stage 1) is the bottleneck: makespan ≈ n * kernel.
        let jobs = vec![[0.1, 5.0, 0.1]; 4];
        let m = pipeline_makespan(&jobs);
        assert!((m - (0.1 + 4.0 * 5.0 + 0.1)).abs() < 1e-9, "m = {m}");
    }

    #[test]
    fn accumulate_and_total() {
        let mut r = ResponseTime::new();
        r.add(Phase::HostCompute, 0.5);
        r.add(Phase::KernelExec, 1.0);
        r.add(Phase::KernelExec, 0.25);
        assert_eq!(r.get(Phase::KernelExec), 1.25);
        assert_eq!(r.get(Phase::HostCompute), 0.5);
        assert_eq!(r.get(Phase::DeviceToHost), 0.0);
        assert!((r.total() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ResponseTime::new();
        a.add(Phase::HostToDevice, 1.0);
        a.kernel_invocations = 2;
        let mut b = ResponseTime::new();
        b.add(Phase::HostToDevice, 2.0);
        b.add(Phase::DeviceToHost, 3.0);
        b.kernel_invocations = 1;
        a.merge(&b);
        assert_eq!(a.get(Phase::HostToDevice), 3.0);
        assert_eq!(a.get(Phase::DeviceToHost), 3.0);
        assert_eq!(a.kernel_invocations, 3);
    }

    #[test]
    fn merge_concurrent_takes_slower_device_but_sums_traffic() {
        let mut fast = ResponseTime::new();
        fast.add(Phase::KernelExec, 1.0);
        fast.add(Phase::HostToDevice, 0.1);
        fast.kernel_invocations = 2;
        fast.h2d_bytes = 100;
        let mut slow = ResponseTime::new();
        slow.add(Phase::KernelExec, 3.0);
        slow.kernel_invocations = 1;
        slow.h2d_bytes = 50;
        slow.d2h_bytes = 7;

        let mut a = fast;
        a.merge_concurrent(&slow);
        // Phases come from the slower device wholesale...
        assert_eq!(a.get(Phase::KernelExec), 3.0);
        assert_eq!(a.get(Phase::HostToDevice), 0.0);
        assert_eq!(a.total(), slow.total());
        // ...while traffic and launch counts aggregate across devices.
        assert_eq!(a.kernel_invocations, 3);
        assert_eq!(a.h2d_bytes, 150);
        assert_eq!(a.d2h_bytes, 7);

        // Merging the faster ledger into the slower leaves phases alone.
        let mut b = slow;
        b.merge_concurrent(&fast);
        assert_eq!(b.get(Phase::KernelExec), 3.0);
        assert_eq!(b.total(), a.total());
        assert_eq!(b.kernel_invocations, 3);
    }

    #[test]
    fn optimistic_discounts_launch_overhead() {
        let mut r = ResponseTime::new();
        r.add(Phase::KernelLaunch, 0.4);
        r.add(Phase::KernelExec, 1.0);
        assert!((r.total_discounting_launches() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let mut r = ResponseTime::new();
        r.add(Phase::KernelExec, 0.125);
        let s = r.to_string();
        assert!(s.contains("kernel-exec 0.125"));
    }
}
