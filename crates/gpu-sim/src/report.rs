//! Common search-report structure shared by the GPU search implementations.

use crate::counters::Counters;
use crate::ledger::ResponseTime;
use crate::memory::OutOfDeviceMemory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of one distance threshold search execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchReport {
    /// Simulated response-time breakdown.
    pub response: ResponseTime,
    /// Query/entry segment comparisons performed (candidate refinements).
    pub comparisons: u64,
    /// Final result records (before host dedup).
    pub raw_matches: u64,
    /// Result records after host dedup.
    pub matches: u64,
    /// Kernel re-invocation rounds beyond the first (buffer overflow redo).
    pub redo_rounds: u32,
    /// Queries that fell back to the purely temporal scheme
    /// (GPUSpatioTemporal only; 0 elsewhere).
    pub fallback_queries: u64,
    /// Warps that diverged (distinct control paths within a warp).
    pub divergent_warps: u64,
    /// Counters summed over every kernel launch of the search (lane work
    /// plus warp-epilogue charges); `totals.atomics` is the headline metric
    /// of the per-lane vs warp-aggregated result-write ablation.
    pub totals: Counters,
    /// Host wall-clock seconds actually spent (all phases).
    pub wall_seconds: f64,
}

impl SearchReport {
    /// Total simulated response time in seconds.
    pub fn response_seconds(&self) -> f64 {
        self.response.total()
    }
}

/// Errors a GPU search can hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// A device allocation failed.
    OutOfDeviceMemory(OutOfDeviceMemory),
    /// The result buffer is too small for even a single query's results, so
    /// the redo protocol cannot make progress.
    ResultCapacityTooSmall { capacity: usize },
    /// The per-query candidate buffer is too small for even one query when
    /// processed alone (GPUSpatial).
    ScratchCapacityTooSmall { capacity: usize },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::OutOfDeviceMemory(e) => write!(f, "{e}"),
            SearchError::ResultCapacityTooSmall { capacity } => write!(
                f,
                "result buffer of {capacity} elements cannot hold a single query's results"
            ),
            SearchError::ScratchCapacityTooSmall { capacity } => write!(
                f,
                "candidate buffer of {capacity} elements cannot hold one query's candidates"
            ),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<OutOfDeviceMemory> for SearchError {
    fn from(e: OutOfDeviceMemory) -> Self {
        SearchError::OutOfDeviceMemory(e)
    }
}
