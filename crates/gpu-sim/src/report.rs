//! Common search-report structure shared by the GPU search implementations.

use crate::counters::Counters;
use crate::launch::LaunchReport;
use crate::ledger::ResponseTime;
use crate::memory::OutOfDeviceMemory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Load-balance metrics accumulated over every kernel launch of a search.
///
/// The headline figure of the work-queue ablation is [`LoadBalance::spread`]
/// — the cost of the heaviest warp relative to the mean. Under the paper's
/// one-thread-per-query mapping the spread tracks the skew of per-query
/// candidate-range lengths; warp-per-tile dispatch caps every dispatch unit
/// at `tile_size` entries, so the spread collapses toward 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadBalance {
    /// Cycles of the most expensive warp over all launches.
    pub max_warp_cycles: f64,
    /// Warp cycles summed over all launches.
    pub warp_cycles: f64,
    /// Warps executed over all launches.
    pub warps: u64,
    /// Work-queue tiles dispatched (0 under `ThreadPerQuery`).
    pub tiles_dispatched: u64,
    /// Work-queue cursor atomics: one per tile plus one failed probe per
    /// persistent warp (0 under `ThreadPerQuery`).
    pub queue_atomics: u64,
    /// Smallest final-wave SM occupancy seen across launches (1.0 when
    /// every launch filled its last round-robin wave; 0.0 if no warps ran).
    pub min_last_wave_occupancy: f64,
}

impl LoadBalance {
    /// Fold one launch's metrics into the totals.
    pub fn add_launch(&mut self, r: &LaunchReport) {
        self.tiles_dispatched += r.tiles_dispatched;
        self.queue_atomics += r.queue_atomics;
        if r.warps == 0 {
            return;
        }
        self.max_warp_cycles = self.max_warp_cycles.max(r.max_warp_cycles);
        self.warp_cycles += r.mean_warp_cycles * r.warps as f64;
        let first = self.warps == 0;
        self.warps += r.warps as u64;
        self.min_last_wave_occupancy = if first {
            r.last_wave_occupancy
        } else {
            self.min_last_wave_occupancy.min(r.last_wave_occupancy)
        };
    }

    /// Fold another accumulated [`LoadBalance`] into this one (e.g. when a
    /// service aggregates the reports of many batch searches).
    pub fn merge(&mut self, other: &LoadBalance) {
        self.tiles_dispatched += other.tiles_dispatched;
        self.queue_atomics += other.queue_atomics;
        if other.warps == 0 {
            return;
        }
        self.max_warp_cycles = self.max_warp_cycles.max(other.max_warp_cycles);
        self.warp_cycles += other.warp_cycles;
        let first = self.warps == 0;
        self.warps += other.warps;
        self.min_last_wave_occupancy = if first {
            other.min_last_wave_occupancy
        } else {
            self.min_last_wave_occupancy.min(other.min_last_wave_occupancy)
        };
    }

    /// Mean cycles per warp over all launches.
    pub fn mean_warp_cycles(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.warp_cycles / self.warps as f64
        }
    }

    /// Max-over-mean warp cost: 1.0 is perfectly balanced.
    pub fn spread(&self) -> f64 {
        let mean = self.mean_warp_cycles();
        if mean == 0.0 {
            1.0
        } else {
            self.max_warp_cycles / mean
        }
    }
}

/// Aggregate slab-routing counters of a (possibly sharded) search.
///
/// Filled by dispatchers that route queries to the shards their reach
/// interval touches instead of broadcasting to all of them; an unsharded
/// (or broadcast) search leaves it at the default. All counters sum under
/// both [`SearchReport::merge`] and [`SearchReport::merge_concurrent`] —
/// they count dispatch *work*, which every shard really performed (or
/// provably avoided), independent of whether the shards ran back to back
/// or side by side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingSummary {
    /// Shard-query pairs actually dispatched: each query counts once per
    /// shard whose sub-batch it joined. Broadcast dispatch reports
    /// `shards × |Q|` here and 0 below.
    pub shard_queries_routed: u64,
    /// Shard-query pairs skipped because the query's reach interval missed
    /// the shard's slab. `routed + skipped = shards × |Q|` always.
    pub shard_queries_skipped: u64,
    /// Shards that received a non-empty sub-batch and were searched.
    pub shards_probed: u64,
    /// Shards skipped outright (every query's reach missed their slab).
    pub shards_skipped: u64,
    /// Shard searches re-run at full result capacity after the routed
    /// budget share proved too small for a single query's results.
    pub budget_redos: u64,
}

impl RoutingSummary {
    /// Fold another summary in (all counters sum; see the type docs for
    /// why this is correct under concurrent merges too).
    pub fn merge(&mut self, other: &RoutingSummary) {
        self.shard_queries_routed += other.shard_queries_routed;
        self.shard_queries_skipped += other.shard_queries_skipped;
        self.shards_probed += other.shards_probed;
        self.shards_skipped += other.shards_skipped;
        self.budget_redos += other.budget_redos;
    }
}

/// Summary of one distance threshold search execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchReport {
    /// Simulated response-time breakdown.
    pub response: ResponseTime,
    /// Query/entry segment comparisons performed (candidate refinements).
    pub comparisons: u64,
    /// Final result records (before host dedup).
    pub raw_matches: u64,
    /// Result records after host dedup.
    pub matches: u64,
    /// Kernel re-invocation rounds beyond the first (buffer overflow redo).
    pub redo_rounds: u32,
    /// Queries that fell back to the purely temporal scheme
    /// (GPUSpatioTemporal only; 0 elsewhere).
    pub fallback_queries: u64,
    /// Warps that diverged (distinct control paths within a warp).
    pub divergent_warps: u64,
    /// Counters summed over every kernel launch of the search (lane work
    /// plus warp-epilogue charges); `totals.atomics` is the headline metric
    /// of the per-lane vs warp-aggregated result-write ablation.
    pub totals: Counters,
    /// Load-imbalance metrics over every launch (see [`LoadBalance`]).
    pub load: LoadBalance,
    /// Host wall-clock seconds actually spent (all phases).
    pub wall_seconds: f64,
    /// Sanitizer findings recorded during this search (0 under
    /// [`crate::SanitizerMode::Off`]); a per-search delta from
    /// [`crate::Device::sanitizer_checkpoint`], so merged reports sum. The
    /// structured diagnostics live on [`crate::Device::sanitizer_report`].
    pub sanitizer_findings: u64,
    /// Slab-routing dispatch counters (all-default when the search was not
    /// sharded or the dispatcher broadcast to every shard).
    pub routing: RoutingSummary,
}

impl SearchReport {
    /// Total simulated response time in seconds.
    pub fn response_seconds(&self) -> f64 {
        self.response.total()
    }

    /// Accumulate another search's report into this one. Used by callers
    /// that run many searches (a batching service, a cluster) and want one
    /// aggregate report: phases, counters, and load metrics sum; wall time
    /// sums (the searches ran back to back on one resource).
    pub fn merge(&mut self, other: &SearchReport) {
        self.response.merge(&other.response);
        self.comparisons += other.comparisons;
        self.raw_matches += other.raw_matches;
        self.matches += other.matches;
        self.redo_rounds += other.redo_rounds;
        self.fallback_queries += other.fallback_queries;
        self.divergent_warps += other.divergent_warps;
        self.totals.add(&other.totals);
        self.load.merge(&other.load);
        self.wall_seconds += other.wall_seconds;
        self.sanitizer_findings += other.sanitizer_findings;
        self.routing.merge(&other.routing);
    }

    /// Aggregate the report of a search that ran *concurrently* on another
    /// device — one shard of a partitioned store. Work counters (segment
    /// comparisons, result records, transfer bytes, launch counts, load
    /// metrics) sum because every device really did that work, but elapsed
    /// time does not: the merge point waits for the slowest shard, so the
    /// response adopts the slower device's phase breakdown
    /// ([`ResponseTime::merge_concurrent`]) and wall time takes the max.
    ///
    /// The caller owns the final `matches` count: per-shard counts sum
    /// here, but cross-shard dedup of boundary replicas happens after the
    /// merge, so sharded callers overwrite `matches` with the deduplicated
    /// total.
    pub fn merge_concurrent(&mut self, other: &SearchReport) {
        self.response.merge_concurrent(&other.response);
        self.comparisons += other.comparisons;
        self.raw_matches += other.raw_matches;
        self.matches += other.matches;
        self.redo_rounds += other.redo_rounds;
        self.fallback_queries += other.fallback_queries;
        self.divergent_warps += other.divergent_warps;
        self.totals.add(&other.totals);
        self.load.merge(&other.load);
        self.wall_seconds = self.wall_seconds.max(other.wall_seconds);
        self.sanitizer_findings += other.sanitizer_findings;
        self.routing.merge(&other.routing);
    }
}

/// Errors a GPU search can hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// A device allocation failed.
    OutOfDeviceMemory(OutOfDeviceMemory),
    /// The result buffer is too small for even a single query's results, so
    /// the redo protocol cannot make progress.
    ResultCapacityTooSmall { capacity: usize },
    /// The per-query candidate buffer is too small for even one query when
    /// processed alone (GPUSpatial).
    ScratchCapacityTooSmall { capacity: usize },
    /// An index, device, or engine configuration parameter is invalid.
    InvalidConfig(String),
    /// The dataset is empty; the indexes require at least one entry.
    EmptyDataset,
    /// The dataset is not sorted by `t_start`, which the temporal indexes
    /// require (prepare it with `PreparedDataset` / `sort_by_t_start`).
    UnsortedDataset,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::OutOfDeviceMemory(e) => write!(f, "{e}"),
            SearchError::ResultCapacityTooSmall { capacity } => write!(
                f,
                "result buffer of {capacity} elements cannot hold a single query's results"
            ),
            SearchError::ScratchCapacityTooSmall { capacity } => write!(
                f,
                "candidate buffer of {capacity} elements cannot hold one query's candidates"
            ),
            SearchError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            SearchError::EmptyDataset => write!(f, "cannot index an empty dataset"),
            SearchError::UnsortedDataset => {
                write!(f, "temporal indexes require the dataset sorted by t_start")
            }
        }
    }
}

impl std::error::Error for SearchError {}

impl From<OutOfDeviceMemory> for SearchError {
    fn from(e: OutOfDeviceMemory) -> Self {
        SearchError::OutOfDeviceMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Phase;

    fn report(exec_secs: f64, comparisons: u64, wall: f64) -> SearchReport {
        let mut r = SearchReport { comparisons, wall_seconds: wall, ..SearchReport::default() };
        r.response.add(Phase::KernelExec, exec_secs);
        r
    }

    #[test]
    fn merge_concurrent_bounds_time_and_sums_work() {
        let mut a = report(1.0, 100, 0.5);
        let b = report(4.0, 300, 0.25);
        a.merge_concurrent(&b);
        // Response is the slower shard's, not the sum.
        assert_eq!(a.response.get(Phase::KernelExec), 4.0);
        assert_eq!(a.response_seconds(), 4.0);
        // Work sums across shards; wall takes the max.
        assert_eq!(a.comparisons, 400);
        assert_eq!(a.wall_seconds, 0.5);
    }

    #[test]
    fn sequential_merge_still_sums_time() {
        let mut a = report(1.0, 100, 0.5);
        let b = report(4.0, 300, 0.25);
        a.merge(&b);
        assert_eq!(a.response.get(Phase::KernelExec), 5.0);
        assert_eq!(a.wall_seconds, 0.75);
    }
}
