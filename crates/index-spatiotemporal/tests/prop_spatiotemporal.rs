//! Property tests for the bins×subbins index and the GPUSpatioTemporal
//! search.

use proptest::prelude::*;
use tdts_geom::{
    dedup_matches, diff_matches, within_distance, MatchRecord, Point3, SegId, Segment,
    SegmentStore, TrajId,
};
use tdts_gpu_sim::{Device, DeviceConfig};
use tdts_index_spatiotemporal::{
    GpuSpatioTemporalSearch, Selector, SpatioTemporalIndex, SpatioTemporalIndexConfig,
};

fn arb_sorted_store(max: usize) -> impl Strategy<Value = SegmentStore> {
    proptest::collection::vec(
        (
            0.0f64..15.0,
            (-25.0f64..25.0, -25.0f64..25.0, -25.0f64..25.0),
            (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
        ),
        1..=max,
    )
    .prop_map(|rows| {
        let mut segs: Vec<Segment> = rows
            .into_iter()
            .enumerate()
            .map(|(i, (t0, p, dp))| {
                let start = Point3::new(p.0, p.1, p.2);
                Segment::new(
                    start,
                    start + Point3::new(dp.0, dp.1, dp.2),
                    t0,
                    t0 + 1.0,
                    SegId(i as u32),
                    TrajId(i as u32),
                )
            })
            .collect();
        segs.sort_by(|x, y| x.t_start.partial_cmp(&y.t_start).unwrap());
        segs.into_iter().collect()
    })
}

fn brute(store: &SegmentStore, queries: &SegmentStore, d: f64) -> Vec<MatchRecord> {
    let mut out = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        for (ei, e) in store.iter().enumerate() {
            if let Some(iv) = within_distance(q, e, d) {
                out.push(MatchRecord::new(qi as u32, ei as u32, iv));
            }
        }
    }
    dedup_matches(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The schedule's candidate set always covers every true match, for any
    /// bin/subbin configuration and distance.
    #[test]
    fn schedule_covers_all_matches(
        store in arb_sorted_store(30),
        bins in 1usize..12,
        subbins in 1usize..8,
        d in 0.1f64..20.0,
        qt in 0.0f64..15.0,
        qx in -25.0f64..25.0,
    ) {
        let idx = SpatioTemporalIndex::build(
            &store,
            SpatioTemporalIndexConfig { bins, subbins, sort_by_selector: true },
        )
        .unwrap();
        prop_assert!(idx.validate(&store).is_ok());
        let q = Segment::new(
            Point3::new(qx, qx * 0.5, -qx * 0.25),
            Point3::new(qx + 1.0, qx * 0.5 + 1.0, -qx * 0.25 + 1.0),
            qt,
            qt + 1.5,
            SegId(0),
            TrajId(1000),
        );
        let entry = idx.schedule_for(&q, d);
        let candidates: Vec<u32> = match entry.selector {
            Selector::Dim(dim) => {
                idx.arrays[dim as usize][entry.lo as usize..entry.hi as usize].to_vec()
            }
            Selector::Temporal => (entry.lo..entry.hi).collect(),
            Selector::Empty => Vec::new(),
        };
        for (pos, e) in store.iter().enumerate() {
            if within_distance(&q, e, d).is_some() {
                prop_assert!(
                    candidates.contains(&(pos as u32)),
                    "match {pos} missing ({:?}, bins {bins}, v {subbins}, d {d})",
                    entry.selector
                );
            }
        }
    }

    /// End-to-end search equals brute force, sorted or unsorted schedule.
    #[test]
    fn search_matches_brute(
        store in arb_sorted_store(25),
        queries in arb_sorted_store(6),
        bins in 1usize..10,
        subbins in 1usize..6,
        d in 0.5f64..25.0,
        sort in proptest::bool::ANY,
    ) {
        let device = Device::new(DeviceConfig::test_tiny()).unwrap();
        let search = GpuSpatioTemporalSearch::new(
            device,
            &store,
            SpatioTemporalIndexConfig { bins, subbins, sort_by_selector: sort },
        )
        .unwrap();
        let (got, report) = search.search(&queries, d, 30_000).unwrap();
        let expect = brute(&store, &queries, d);
        prop_assert!(diff_matches(&got, &expect, 1e-9).is_none(),
            "mismatch (bins {bins}, v {subbins}, d {d}, sort {sort})");
        prop_assert!(report.fallback_queries <= queries.len() as u64);
    }
}
