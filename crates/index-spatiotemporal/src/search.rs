//! The `GPUSpatioTemporal` search driver and kernel (Algorithm 3).
//!
//! The kernel skeleton (candidate iteration → refinement → warp-stash
//! commit → redo) lives in [`tdts_kernels`]; this module contributes the
//! selector machinery: the per-query schedule entry choosing one of the
//! `X`/`Y`/`Z` id arrays (or the temporal fallback), the selector-sorted,
//! warp-padded execution order (thread-per-query), and selector-tagged
//! tiles (warp-per-tile).

use crate::index::{ScheduleEntry, Selector, SpatioTemporalIndex, SpatioTemporalIndexConfig};
use std::sync::Arc;
use std::time::Instant;
use tdts_geom::{MatchRecord, SegmentStore, StoreStats};
use tdts_gpu_sim::{
    Device, DeviceBuffer, KernelShape, Lane, SearchError, SearchReport, Tile, WarpStash,
};
use tdts_kernels::{
    compare_and_stage, finish_search, load_query, run_thread_per_query, run_warp_per_tile,
    CandidateGenerator, DeviceSegments, KernelContext, LaneWork, PushOutcome, SortedQueries,
    TileGenerator, SCHEDULE_INSTR,
};

/// High bit of an execution-order slot: the lane is warp-alignment padding
/// (the low bits carry the selector so the lane stays on its group's path).
const IDLE_LANE: u32 = 1 << 31;

/// Pad each selector group of `exec` to a multiple of `warp_size` slots so
/// warps never mix selectors. `exec` must already be grouped by selector.
fn pad_groups_to_warps(exec: &[u32], schedule: &[[u32; 4]], warp_size: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(exec.len() + 4 * warp_size);
    let mut i = 0;
    while i < exec.len() {
        let selector = schedule[exec[i] as usize][0];
        let start = i;
        while i < exec.len() && schedule[exec[i] as usize][0] == selector {
            i += 1;
        }
        out.extend_from_slice(&exec[start..i]);
        if i < exec.len() {
            while out.len() % warp_size != 0 {
                out.push(IDLE_LANE | selector);
            }
        }
    }
    out
}

/// `GPUSpatioTemporal`: index + device-resident arrays + search driver.
pub struct GpuSpatioTemporalSearch {
    device: Arc<Device>,
    index: SpatioTemporalIndex,
    config: SpatioTemporalIndexConfig,
    generation: u64,
    dev_entries: DeviceSegments,
    /// The `X`, `Y`, `Z` id arrays on the device.
    dev_arrays: [DeviceBuffer<u32>; 3],
}

impl GpuSpatioTemporalSearch {
    /// Build the index over `store` (must be sorted by `t_start`) and place
    /// the database plus the three id arrays in device memory (offline).
    pub fn new(
        device: Arc<Device>,
        store: &SegmentStore,
        config: SpatioTemporalIndexConfig,
    ) -> Result<GpuSpatioTemporalSearch, SearchError> {
        let stats = store.stats().ok_or(SearchError::EmptyDataset)?;
        GpuSpatioTemporalSearch::new_with_stats(device, store, &stats, config)
    }

    /// [`new`](GpuSpatioTemporalSearch::new) with the store's
    /// [`StoreStats`] supplied by the caller, sharing one stats scan across
    /// methods.
    pub fn new_with_stats(
        device: Arc<Device>,
        store: &SegmentStore,
        stats: &StoreStats,
        config: SpatioTemporalIndexConfig,
    ) -> Result<GpuSpatioTemporalSearch, SearchError> {
        let index = SpatioTemporalIndex::build_with_stats(store, stats, config)?;
        let dev_entries = DeviceSegments::alloc_store(&device, store)?;
        let dev_arrays = [
            device.alloc_from_host(index.arrays[0].clone())?,
            device.alloc_from_host(index.arrays[1].clone())?,
            device.alloc_from_host(index.arrays[2].clone())?,
        ];
        Ok(GpuSpatioTemporalSearch {
            device,
            index,
            config,
            generation: store.generation(),
            dev_entries,
            dev_arrays,
        })
    }

    /// The index.
    pub fn index(&self) -> &SpatioTemporalIndex {
        &self.index
    }

    /// The device this search runs on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The store generation this index currently reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Extend the index over store entries `delta.from..` and grow the
    /// device-resident database in place. The per-dimension id arrays are
    /// re-spliced on the host (their `(subbin, bin)` layout shifts when new
    /// temporal bins appear) and re-placed on the device offline.
    pub fn ingest(
        &mut self,
        store: &SegmentStore,
        delta: &tdts_geom::AppendDelta,
    ) -> Result<(), SearchError> {
        self.index.append(store, delta.from)?;
        self.dev_entries.extend(&store.segments()[delta.from..])?;
        self.dev_arrays = [
            self.device.alloc_from_host(self.index.arrays[0].clone())?,
            self.device.alloc_from_host(self.index.arrays[1].clone())?,
            self.device.alloc_from_host(self.index.arrays[2].clone())?,
        ];
        self.generation = delta.generation;
        Ok(())
    }

    /// Drop expired entries from the index and the device-resident database.
    pub fn expire(
        &mut self,
        store: &SegmentStore,
        delta: &tdts_geom::ExpireDelta,
    ) -> Result<(), SearchError> {
        self.index.expire(store, delta)?;
        self.dev_entries.remove_positions(&delta.removed);
        self.dev_arrays = [
            self.device.alloc_from_host(self.index.arrays[0].clone())?,
            self.device.alloc_from_host(self.index.arrays[1].clone())?,
            self.device.alloc_from_host(self.index.arrays[2].clone())?,
        ];
        self.generation = delta.generation;
        Ok(())
    }

    /// Run the distance threshold search at distance `d` with a result
    /// buffer of `result_capacity` records.
    pub fn search(
        &self,
        queries: &SegmentStore,
        d: f64,
        result_capacity: usize,
    ) -> Result<(Vec<MatchRecord>, SearchReport), SearchError> {
        let wall_start = Instant::now();
        self.device.reset_ledger();
        let mut report = SearchReport::default();

        // Host: sort Q, compute the schedule, and order query execution by
        // array selector to reduce warp divergence (§IV-C2).
        let host_start = Instant::now();
        let sorted = SortedQueries::from_store(queries);
        let mut schedule: Vec<[u32; 4]> = Vec::with_capacity(sorted.len());
        let mut fallback = 0u64;
        for q in &sorted.segments {
            let entry: ScheduleEntry = self.index.schedule_for(q, d);
            if entry.selector == Selector::Temporal {
                fallback += 1;
            }
            schedule.push(entry.encode());
        }
        let wpt = self.device.config().kernel_shape == KernelShape::WarpPerTile;
        let mut exec_order: Vec<u32> = (0..sorted.len() as u32).collect();
        // Warp-per-tile dispatch skips the selector sort entirely: every
        // tile carries its selector, so warps are selector-homogeneous by
        // construction and need no execution-order permutation or padding.
        if self.config.sort_by_selector && !wpt {
            // Selector first (bounds divergence to the group boundaries),
            // then candidate count: SIMT warps cost as much as their
            // heaviest lane, so co-scheduling similar workloads keeps
            // max-over-lanes close to the mean.
            exec_order.sort_by_key(|&qi| {
                let entry = schedule[qi as usize];
                (entry[0], std::cmp::Reverse(entry[2].saturating_sub(entry[1])))
            });
            // Warp-align the selector groups with idle lanes so no warp
            // mixes control paths (mixing triggers the uncoalesced-memory
            // penalty, which dwarfs the few wasted lanes).
            exec_order =
                pad_groups_to_warps(&exec_order, &schedule, self.device.config().warp_size);
        }
        self.device.charge_host(host_start.elapsed().as_secs_f64());
        report.fallback_queries = fallback;

        if sorted.is_empty() {
            report.response = self.device.ledger();
            report.wall_seconds = wall_start.elapsed().as_secs_f64();
            return Ok((Vec::new(), report));
        }

        // Online transfers: Q, plus (thread-per-query only) S and the
        // execution order.
        let dev_queries = DeviceSegments::upload(&self.device, &sorted.segments)?;
        let (matches, comparisons) = if wpt {
            let generator =
                SpatioTemporalTiles { search: self, queries: &dev_queries, schedule: &schedule, d };
            run_warp_per_tile(&self.device, &generator, sorted.len(), result_capacity, &mut report)?
        } else {
            let generator = SpatioTemporalThreads {
                search: self,
                queries: &dev_queries,
                schedule: self.device.upload(schedule.clone())?,
                exec: self.device.upload(exec_order.clone())?,
                exec_len: exec_order.len(),
                d,
            };
            run_thread_per_query(
                &self.device,
                &generator,
                sorted.len(),
                result_capacity,
                &mut report,
            )?
        };

        // Host postprocessing. Single-subbin lookups produce no duplicates;
        // dedup still runs to canonicalise order and to collapse duplicates
        // from redone queries.
        Ok(finish_search(&self.device, matches, Some(&sorted), comparisons, report, wall_start))
    }
}

/// Thread-per-query candidate generation: the first round launches one
/// thread per *slot* of the padded execution order; each live lane reads its
/// schedule entry, takes its selector's control path, and walks the chosen
/// id array (or the direct temporal range).
struct SpatioTemporalThreads<'a> {
    search: &'a GpuSpatioTemporalSearch,
    queries: &'a DeviceSegments,
    schedule: DeviceBuffer<[u32; 4]>,
    exec: DeviceBuffer<u32>,
    exec_len: usize,
    d: f64,
}

impl KernelContext for SpatioTemporalThreads<'_> {
    fn entries(&self) -> &DeviceSegments {
        &self.search.dev_entries
    }
    fn queries(&self) -> &DeviceSegments {
        self.queries
    }
    fn distance(&self) -> f64 {
        self.d
    }
}

impl CandidateGenerator for SpatioTemporalThreads<'_> {
    type Round = ();

    fn begin_round(&self, _batch_len: usize) -> Result<(), SearchError> {
        Ok(())
    }

    fn first_round_threads(&self, _n_queries: usize) -> usize {
        self.exec_len
    }

    fn first_round_slot(&self, lane: &mut Lane) -> u32 {
        self.exec.read(lane, lane.global_id)
    }

    fn decode_slot(&self, lane: &mut Lane, code: u32) -> Option<u32> {
        if code & IDLE_LANE != 0 {
            // Warp-alignment padding: take the same control path as the
            // surrounding selector group and retire (before staging
            // anything, so the lane can never appear in the dropped mask).
            lane.set_path((code & !IDLE_LANE) as u64);
            return None;
        }
        Some(code)
    }

    fn run_query(
        &self,
        lane: &mut Lane,
        qid: u32,
        stash: &mut WarpStash<'_, MatchRecord>,
        _round: &(),
    ) -> LaneWork {
        let entry = self.schedule.read(lane, qid as usize);
        lane.instr(SCHEDULE_INSTR);
        let selector = entry[0];
        // Control-flow divergence: lanes with different selectors serialise
        // (the reason the schedule is selector-sorted).
        lane.set_path(selector as u64);
        if selector == 4 {
            return LaneWork::default(); // no temporally overlapping entries
        }
        let q = load_query(lane, self.queries, qid);
        let mut compared = 0u64;
        for i in entry[1]..entry[2] {
            // Selector 0–2: one indirection through X/Y/Z. Selector 3:
            // positions are direct (temporal fallback).
            let entry_pos = if selector <= 2 {
                self.search.dev_arrays[selector as usize].read(lane, i as usize)
            } else {
                i
            };
            compared += 1;
            if compare_and_stage(lane, &self.search.dev_entries, entry_pos, &q, qid, self.d, stash)
                == PushOutcome::Overflow
            {
                break;
            }
        }
        LaneWork { compared, scratch_bytes: 0 }
    }
}

/// Warp-per-tile decomposition: each schedule entry's candidate range is
/// split into tiles tagged with the entry's selector, so every warp works
/// one selector at a time — selector homogeneity by construction, with no
/// execution-order sort or idle-lane padding. Selector 4 (no temporally
/// overlapping entries) contributes no tiles.
struct SpatioTemporalTiles<'a> {
    search: &'a GpuSpatioTemporalSearch,
    queries: &'a DeviceSegments,
    schedule: &'a [[u32; 4]],
    d: f64,
}

impl KernelContext for SpatioTemporalTiles<'_> {
    fn entries(&self) -> &DeviceSegments {
        &self.search.dev_entries
    }
    fn queries(&self) -> &DeviceSegments {
        self.queries
    }
    fn distance(&self) -> f64 {
        self.d
    }
}

impl TileGenerator for SpatioTemporalTiles<'_> {
    fn push_tiles(&self, tiles: &mut Vec<Tile>, qid: u32, tile_size: usize) {
        let e = self.schedule[qid as usize];
        if e[0] == 4 {
            return; // no temporally overlapping entries
        }
        Tile::split_into(tiles, qid, e[1], e[2], e[0], tile_size);
    }

    fn tile_entry_pos(&self, lane: &mut Lane, tile: &Tile, i: usize) -> u32 {
        // Selector 0–2: one indirection through X/Y/Z. Selector 3:
        // positions are direct (temporal fallback).
        let selector = tile.tag as usize;
        if selector <= 2 {
            self.search.dev_arrays[selector].read(lane, i)
        } else {
            i as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdts_geom::{dedup_matches, within_distance, Point3, SegId, Segment, TrajId};
    use tdts_gpu_sim::DeviceConfig;

    fn seg(x: f64, t0: f64, id: u32) -> Segment {
        Segment::new(
            Point3::new(x, x * 0.3, -x * 0.2),
            Point3::new(x + 1.0, x * 0.3 + 0.7, -x * 0.2 + 0.4),
            t0,
            t0 + 1.0,
            SegId(id),
            TrajId(id),
        )
    }

    fn sorted_store(n: usize) -> SegmentStore {
        (0..n).map(|i| seg(i as f64 * 2.0, i as f64 * 0.4, i as u32)).collect()
    }

    fn brute(store: &SegmentStore, queries: &SegmentStore, d: f64) -> Vec<MatchRecord> {
        let mut out = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            for (ei, e) in store.iter().enumerate() {
                if let Some(iv) = within_distance(q, e, d) {
                    out.push(MatchRecord::new(qi as u32, ei as u32, iv));
                }
            }
        }
        dedup_matches(&mut out);
        out
    }

    fn device() -> Arc<Device> {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn matches_brute_force_across_distances() {
        let store = sorted_store(50);
        let queries: SegmentStore =
            (0..15).map(|i| seg(i as f64 * 5.0 + 0.3, i as f64 * 1.1, 100 + i as u32)).collect();
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        // Sweep d across regimes: subbin-selective, mixed, all-fallback.
        for d in [0.3, 2.0, 15.0, 200.0] {
            let (got, report) = search.search(&queries, d, 20_000).unwrap();
            let expect = brute(&store, &queries, d);
            assert_eq!(got, expect, "d = {d}");
            assert!(report.comparisons >= report.matches);
        }
    }

    #[test]
    fn fallback_grows_with_d() {
        let store = sorted_store(60);
        let queries = sorted_store(20);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 6, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        let (_, small) = search.search(&queries, 0.1, 20_000).unwrap();
        let (_, large) = search.search(&queries, 1_000.0, 20_000).unwrap();
        assert!(small.fallback_queries < large.fallback_queries);
        assert_eq!(large.fallback_queries, queries.len() as u64);
    }

    #[test]
    fn no_duplicates_without_redo() {
        let store = sorted_store(40);
        let queries = sorted_store(40);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        let (_, report) = search.search(&queries, 1.5, 20_000).unwrap();
        assert_eq!(report.redo_rounds, 0);
        assert_eq!(
            report.raw_matches, report.matches,
            "single-subbin scheme must not produce duplicates"
        );
    }

    #[test]
    fn result_overflow_redo_same_results() {
        let store = sorted_store(40);
        let queries = sorted_store(40);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 4, subbins: 2, sort_by_selector: true },
        )
        .unwrap();
        let (full, _) = search.search(&queries, 4.0, 20_000).unwrap();
        assert!(!full.is_empty());
        let (constrained, report) = search.search(&queries, 4.0, (full.len() / 4).max(2)).unwrap();
        assert_eq!(constrained, full);
        assert!(report.redo_rounds > 0);
    }

    #[test]
    fn divergence_is_visible_with_mixed_selectors() {
        // A d in the mixed regime gives different selectors to different
        // queries; the simulator should report divergent warps only when the
        // selector-sorted order still mixes paths inside one warp.
        let store = sorted_store(100);
        let queries = sorted_store(64);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        let (_, report) = search.search(&queries, 5.0, 20_000).unwrap();
        // Sorting by selector bounds divergence: at most 3 boundary warps
        // (one per selector transition) can diverge.
        assert!(report.divergent_warps <= 3, "divergent warps {}", report.divergent_warps);
    }

    fn wpt_device() -> Arc<Device> {
        let mut c = DeviceConfig::test_tiny();
        c.kernel_shape = KernelShape::WarpPerTile;
        Device::new(c).unwrap()
    }

    #[test]
    fn warp_per_tile_matches_thread_per_query() {
        let store = sorted_store(50);
        let queries: SegmentStore =
            (0..15).map(|i| seg(i as f64 * 5.0 + 0.3, i as f64 * 1.1, 100 + i as u32)).collect();
        let cfg = SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true };
        let tpq = GpuSpatioTemporalSearch::new(device(), &store, cfg).unwrap();
        let wpt = GpuSpatioTemporalSearch::new(wpt_device(), &store, cfg).unwrap();
        // Sweep d across regimes: subbin-selective, mixed, all-fallback.
        for d in [0.3, 2.0, 15.0, 200.0] {
            let (a, ra) = tpq.search(&queries, d, 20_000).unwrap();
            let (b, rb) = wpt.search(&queries, d, 20_000).unwrap();
            assert_eq!(a, b, "d = {d}");
            assert_eq!(ra.comparisons, rb.comparisons, "same candidates refined at d = {d}");
            // Selector-homogeneous tiles: warps never mix control paths.
            assert_eq!(rb.divergent_warps, 0, "d = {d}");
        }
    }

    #[test]
    fn warp_per_tile_redo_preserves_results() {
        let store = sorted_store(40);
        let queries = sorted_store(40);
        let search = GpuSpatioTemporalSearch::new(
            wpt_device(),
            &store,
            SpatioTemporalIndexConfig { bins: 4, subbins: 2, sort_by_selector: true },
        )
        .unwrap();
        let (full, _) = search.search(&queries, 4.0, 20_000).unwrap();
        assert!(!full.is_empty());
        let (constrained, report) = search.search(&queries, 4.0, (full.len() / 4).max(2)).unwrap();
        assert_eq!(constrained, full);
        assert!(report.redo_rounds > 0);
    }

    #[test]
    fn ingest_and_expire_match_cold_rebuild() {
        for make_dev in [device as fn() -> Arc<Device>, wpt_device as fn() -> Arc<Device>] {
            let mut store = sorted_store(40);
            let queries: SegmentStore = (0..15)
                .map(|i| seg(i as f64 * 4.0 + 0.3, i as f64 * 1.2, 100 + i as u32))
                .collect();
            let cfg = SpatioTemporalIndexConfig { bins: 6, subbins: 4, sort_by_selector: true };
            let mut search = GpuSpatioTemporalSearch::new(make_dev(), &store, cfg).unwrap();
            // Time-ordered ticks past the current extent (t_max ≈ 16.6),
            // including a spatially out-of-bounds segment.
            for tick in 0..3u32 {
                let t0 = 17.0 + tick as f64 * 2.0;
                let delta = store.append(&[
                    seg(tick as f64 * 3.0, t0, 700 + tick),
                    seg(300.0, t0 + 1.0, 800 + tick),
                ]);
                search.ingest(&store, &delta).unwrap();
            }
            assert!(search.index().validate(&store).is_ok());
            let exp = store.expire_before(4.0);
            assert!(!exp.removed.is_empty());
            search.expire(&store, &exp).unwrap();
            assert!(search.index().validate(&store).is_ok());

            let cold = GpuSpatioTemporalSearch::new(make_dev(), &store, cfg).unwrap();
            for d in [0.3, 2.0, 15.0] {
                let (warm, _) = search.search(&queries, d, 20_000).unwrap();
                let (want, _) = cold.search(&queries, d, 20_000).unwrap();
                assert_eq!(warm, want, "d = {d}");
                assert_eq!(warm, brute(&store, &queries, d), "d = {d}");
            }
        }
    }

    #[test]
    fn empty_queries() {
        let store = sorted_store(5);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 2, subbins: 2, sort_by_selector: true },
        )
        .unwrap();
        let (m, report) = search.search(&SegmentStore::new(), 1.0, 100).unwrap();
        assert!(m.is_empty());
        assert_eq!(report.matches, 0);
    }
}
