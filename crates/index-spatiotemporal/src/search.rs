//! The `GPUSpatioTemporal` search driver and kernel (Algorithm 3).

use crate::index::{ScheduleEntry, Selector, SpatioTemporalIndex, SpatioTemporalIndexConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tdts_geom::{dedup_matches, MatchRecord, Segment, SegmentStore};
use tdts_gpu_sim::{
    Device, DeviceBuffer, KernelShape, NextBatch, RedoSchedule, SearchError, SearchReport, Tile,
    MAX_WARP_LANES,
};
use tdts_index_temporal::kernel::{compare_and_stage, load_query, PushOutcome, SCHEDULE_INSTR};
use tdts_index_temporal::search::SortedQueries;

/// High bit of an execution-order slot: the lane is warp-alignment padding
/// (the low bits carry the selector so the lane stays on its group's path).
const IDLE_LANE: u32 = 1 << 31;

/// Pad each selector group of `exec` to a multiple of `warp_size` slots so
/// warps never mix selectors. `exec` must already be grouped by selector.
fn pad_groups_to_warps(exec: &[u32], schedule: &[[u32; 4]], warp_size: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(exec.len() + 4 * warp_size);
    let mut i = 0;
    while i < exec.len() {
        let selector = schedule[exec[i] as usize][0];
        let start = i;
        while i < exec.len() && schedule[exec[i] as usize][0] == selector {
            i += 1;
        }
        out.extend_from_slice(&exec[start..i]);
        if i < exec.len() {
            while out.len() % warp_size != 0 {
                out.push(IDLE_LANE | selector);
            }
        }
    }
    out
}

/// `GPUSpatioTemporal`: index + device-resident arrays + search driver.
pub struct GpuSpatioTemporalSearch {
    device: Arc<Device>,
    index: SpatioTemporalIndex,
    config: SpatioTemporalIndexConfig,
    dev_entries: DeviceBuffer<Segment>,
    /// The `X`, `Y`, `Z` id arrays on the device.
    dev_arrays: [DeviceBuffer<u32>; 3],
}

impl GpuSpatioTemporalSearch {
    /// Build the index over `store` (must be sorted by `t_start`) and place
    /// the database plus the three id arrays in device memory (offline).
    pub fn new(
        device: Arc<Device>,
        store: &SegmentStore,
        config: SpatioTemporalIndexConfig,
    ) -> Result<GpuSpatioTemporalSearch, SearchError> {
        let index = SpatioTemporalIndex::build(store, config)?;
        let dev_entries = device.alloc_from_host(store.segments().to_vec())?;
        let dev_arrays = [
            device.alloc_from_host(index.arrays[0].clone())?,
            device.alloc_from_host(index.arrays[1].clone())?,
            device.alloc_from_host(index.arrays[2].clone())?,
        ];
        Ok(GpuSpatioTemporalSearch { device, index, config, dev_entries, dev_arrays })
    }

    /// The index.
    pub fn index(&self) -> &SpatioTemporalIndex {
        &self.index
    }

    /// The device this search runs on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Run the distance threshold search at distance `d` with a result
    /// buffer of `result_capacity` records.
    pub fn search(
        &self,
        queries: &SegmentStore,
        d: f64,
        result_capacity: usize,
    ) -> Result<(Vec<MatchRecord>, SearchReport), SearchError> {
        let wall_start = Instant::now();
        self.device.reset_ledger();
        let mut report = SearchReport::default();

        // Host: sort Q, compute the schedule, and order query execution by
        // array selector to reduce warp divergence (§IV-C2).
        let host_start = Instant::now();
        let sorted = SortedQueries::from_store(queries);
        let mut schedule: Vec<[u32; 4]> = Vec::with_capacity(sorted.len());
        let mut fallback = 0u64;
        for q in &sorted.segments {
            let entry: ScheduleEntry = self.index.schedule_for(q, d);
            if entry.selector == Selector::Temporal {
                fallback += 1;
            }
            schedule.push(entry.encode());
        }
        let wpt = self.device.config().kernel_shape == KernelShape::WarpPerTile;
        let mut exec_order: Vec<u32> = (0..sorted.len() as u32).collect();
        // Warp-per-tile dispatch skips the selector sort entirely: every
        // tile carries its selector, so warps are selector-homogeneous by
        // construction and need no execution-order permutation or padding.
        if self.config.sort_by_selector && !wpt {
            // Selector first (bounds divergence to the group boundaries),
            // then candidate count: SIMT warps cost as much as their
            // heaviest lane, so co-scheduling similar workloads keeps
            // max-over-lanes close to the mean.
            exec_order.sort_by_key(|&qi| {
                let entry = schedule[qi as usize];
                (entry[0], std::cmp::Reverse(entry[2].saturating_sub(entry[1])))
            });
            // Warp-align the selector groups with idle lanes so no warp
            // mixes control paths (mixing triggers the uncoalesced-memory
            // penalty, which dwarfs the few wasted lanes).
            exec_order =
                pad_groups_to_warps(&exec_order, &schedule, self.device.config().warp_size);
        }
        self.device.charge_host(host_start.elapsed().as_secs_f64());
        report.fallback_queries = fallback;

        if sorted.is_empty() {
            report.response = self.device.ledger();
            report.wall_seconds = wall_start.elapsed().as_secs_f64();
            return Ok((Vec::new(), report));
        }

        // Online transfers: Q, S, and the execution order.
        let dev_queries = self.device.upload(sorted.segments.clone())?;
        if wpt {
            return self.search_tiles(
                wall_start,
                report,
                &sorted,
                &schedule,
                dev_queries,
                d,
                result_capacity,
            );
        }
        let dev_schedule = self.device.upload(schedule.clone())?;
        let dev_exec = self.device.upload(exec_order.clone())?;
        let mut results = self.device.alloc_result::<MatchRecord>(result_capacity)?;
        let mut redo = self.device.alloc_result::<u32>(sorted.len())?;

        let mut matches: Vec<MatchRecord> = Vec::new();
        let mut batch: Option<DeviceBuffer<u32>> = None;
        // Real queries in flight (redo accounting); the first round launches
        // one thread per *slot* of the padded execution order.
        let mut batch_len = sorted.len();
        let mut launch_threads = exec_order.len();
        let mut redo_schedule = RedoSchedule::new();
        let comparisons = AtomicU64::new(0);

        loop {
            let launch = self.device.launch_warps(launch_threads, |warp| {
                let mut stash = results.warp_stash();
                let mut qids = [0u32; MAX_WARP_LANES];
                warp.for_each_lane(|lane| {
                    let code = match &batch {
                        None => dev_exec.read(lane, lane.global_id),
                        Some(ids) => ids.read(lane, lane.global_id),
                    };
                    if code & IDLE_LANE != 0 {
                        // Warp-alignment padding: take the same control path
                        // as the surrounding selector group and retire
                        // (before staging anything, so the lane can never
                        // appear in the dropped mask).
                        lane.set_path((code & !IDLE_LANE) as u64);
                        return;
                    }
                    let qid = code;
                    qids[lane.lane_index()] = qid;
                    let entry = dev_schedule.read(lane, qid as usize);
                    lane.instr(SCHEDULE_INSTR);
                    let selector = entry[0];
                    // Control-flow divergence: lanes with different selectors
                    // serialise (the reason the schedule is selector-sorted).
                    lane.set_path(selector as u64);
                    if selector == 4 {
                        return; // no temporally overlapping entries
                    }
                    let q = load_query(lane, &dev_queries, qid);
                    let mut compared = 0u64;
                    for i in entry[1]..entry[2] {
                        // Selector 0–2: one indirection through X/Y/Z.
                        // Selector 3: positions are direct (temporal
                        // fallback).
                        let entry_pos = if selector <= 2 {
                            self.dev_arrays[selector as usize].read(lane, i as usize)
                        } else {
                            i
                        };
                        compared += 1;
                        if compare_and_stage(
                            lane,
                            &self.dev_entries,
                            entry_pos,
                            &q,
                            qid,
                            d,
                            &mut stash,
                        ) == PushOutcome::Overflow
                        {
                            break;
                        }
                    }
                    comparisons.fetch_add(compared, Ordering::Relaxed);
                });
                // Warp epilogue: one cursor fetch-add per stash flush, then
                // queue any overflowed lanes' queries for redo.
                let dropped = stash.commit(warp);
                if dropped != 0 {
                    let mut redo_stash = redo.warp_stash();
                    for (li, &qid) in qids.iter().enumerate().take(warp.lane_count()) {
                        if dropped & (1 << li) != 0 {
                            redo_stash.stage_at(li, qid);
                        }
                    }
                    redo_stash.commit(warp);
                }
            });
            report.divergent_warps += launch.divergent_warps as u64;
            report.totals.add(&launch.totals);
            report.load.add_launch(&launch);

            let produced = results.len();
            self.device.charge_download(produced * std::mem::size_of::<MatchRecord>());
            matches.extend(results.drain_to_host());
            let redo_ids = redo.drain_to_host();
            self.device.charge_download(redo_ids.len() * std::mem::size_of::<u32>());

            match redo_schedule.next(redo_ids, batch_len) {
                NextBatch::Done => break,
                NextBatch::Stuck => {
                    return Err(SearchError::ResultCapacityTooSmall { capacity: result_capacity })
                }
                NextBatch::Ids(ids) => {
                    report.redo_rounds += 1;
                    batch_len = ids.len();
                    launch_threads = ids.len();
                    batch = Some(self.device.upload(ids)?);
                }
            }
        }

        // Host postprocessing. Single-subbin lookups produce no duplicates;
        // dedup still runs to canonicalise order and to collapse duplicates
        // from redone queries.
        let host_start = Instant::now();
        report.raw_matches = matches.len() as u64;
        sorted.unpermute(&mut matches);
        dedup_matches(&mut matches);
        self.device.charge_host(host_start.elapsed().as_secs_f64());

        report.comparisons = comparisons.into_inner();
        report.matches = matches.len() as u64;
        report.response = self.device.ledger();
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        Ok((matches, report))
    }

    /// [`KernelShape::WarpPerTile`] body of
    /// [`GpuSpatioTemporalSearch::search`]: each schedule entry's candidate
    /// range is split into tiles tagged with the entry's selector, so every
    /// warp works one selector at a time — selector homogeneity by
    /// construction, with no execution-order sort or idle-lane padding.
    /// Selector 4 (no temporally overlapping entries) contributes no tiles.
    #[allow(clippy::too_many_arguments)]
    fn search_tiles(
        &self,
        wall_start: Instant,
        mut report: SearchReport,
        sorted: &SortedQueries,
        schedule: &[[u32; 4]],
        dev_queries: DeviceBuffer<Segment>,
        d: f64,
        result_capacity: usize,
    ) -> Result<(Vec<MatchRecord>, SearchReport), SearchError> {
        let tile_size = self.device.config().tile_size;
        let warp_size = self.device.config().warp_size;

        let build_tiles = |ids: Option<&[u32]>| -> Vec<Tile> {
            let host_start = Instant::now();
            let mut tiles = Vec::new();
            let mut push = |qid: u32| {
                let e = schedule[qid as usize];
                if e[0] == 4 {
                    return; // no temporally overlapping entries
                }
                Tile::split_into(&mut tiles, qid, e[1], e[2], e[0], tile_size);
            };
            match ids {
                None => (0..sorted.len() as u32).for_each(&mut push),
                Some(ids) => ids.iter().copied().for_each(&mut push),
            }
            self.device.charge_host(host_start.elapsed().as_secs_f64());
            tiles
        };

        let mut tiles = build_tiles(None);
        let mut results = self.device.alloc_result::<MatchRecord>(result_capacity)?;
        let mut redo = self.device.alloc_result::<u32>(tiles.len().max(1))?;

        let mut matches: Vec<MatchRecord> = Vec::new();
        let mut batch_len = sorted.len();
        let mut redo_schedule = RedoSchedule::new();
        let comparisons = AtomicU64::new(0);

        loop {
            let queue = self.device.work_queue(std::mem::take(&mut tiles))?;
            let launch = self.device.launch_persistent(&queue, |warp, tile| {
                let mut stash = results.warp_stash();
                let selector = tile.tag as usize;
                // Converged: the warp leader reads the query once and
                // broadcasts it.
                let q = dev_queries.as_slice()[tile.query as usize];
                warp.gmem_read(std::mem::size_of::<Segment>() as u64);
                warp.instr(SCHEDULE_INSTR);
                warp.for_each_lane(|lane| {
                    let mut compared = 0u64;
                    let mut i = tile.lo as usize + lane.lane_index();
                    while i < tile.hi as usize {
                        // Selector 0–2: one indirection through X/Y/Z.
                        // Selector 3: positions are direct (temporal
                        // fallback).
                        let entry_pos = if selector <= 2 {
                            self.dev_arrays[selector].read(lane, i)
                        } else {
                            i as u32
                        };
                        compared += 1;
                        if compare_and_stage(
                            lane,
                            &self.dev_entries,
                            entry_pos,
                            &q,
                            tile.query,
                            d,
                            &mut stash,
                        ) == PushOutcome::Overflow
                        {
                            break;
                        }
                        i += warp_size;
                    }
                    comparisons.fetch_add(compared, Ordering::Relaxed);
                });
                let dropped = stash.commit(warp);
                if dropped != 0 {
                    let mut redo_stash = redo.warp_stash();
                    redo_stash.stage_at(0, tile.query);
                    redo_stash.commit(warp);
                }
            });
            report.divergent_warps += launch.divergent_warps as u64;
            report.totals.add(&launch.totals);
            report.load.add_launch(&launch);

            let produced = results.len();
            self.device.charge_download(produced * std::mem::size_of::<MatchRecord>());
            matches.extend(results.drain_to_host());
            let mut redo_ids = redo.drain_to_host();
            self.device.charge_download(redo_ids.len() * std::mem::size_of::<u32>());
            redo_ids.sort_unstable();
            redo_ids.dedup();

            match redo_schedule.next(redo_ids, batch_len) {
                NextBatch::Done => break,
                NextBatch::Stuck => {
                    return Err(SearchError::ResultCapacityTooSmall { capacity: result_capacity })
                }
                NextBatch::Ids(ids) => {
                    report.redo_rounds += 1;
                    batch_len = ids.len();
                    tiles = build_tiles(Some(&ids));
                }
            }
        }

        let host_start = Instant::now();
        report.raw_matches = matches.len() as u64;
        sorted.unpermute(&mut matches);
        dedup_matches(&mut matches);
        self.device.charge_host(host_start.elapsed().as_secs_f64());

        report.comparisons = comparisons.into_inner();
        report.matches = matches.len() as u64;
        report.response = self.device.ledger();
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        Ok((matches, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdts_geom::{within_distance, Point3, SegId, TrajId};
    use tdts_gpu_sim::DeviceConfig;

    fn seg(x: f64, t0: f64, id: u32) -> Segment {
        Segment::new(
            Point3::new(x, x * 0.3, -x * 0.2),
            Point3::new(x + 1.0, x * 0.3 + 0.7, -x * 0.2 + 0.4),
            t0,
            t0 + 1.0,
            SegId(id),
            TrajId(id),
        )
    }

    fn sorted_store(n: usize) -> SegmentStore {
        (0..n).map(|i| seg(i as f64 * 2.0, i as f64 * 0.4, i as u32)).collect()
    }

    fn brute(store: &SegmentStore, queries: &SegmentStore, d: f64) -> Vec<MatchRecord> {
        let mut out = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            for (ei, e) in store.iter().enumerate() {
                if let Some(iv) = within_distance(q, e, d) {
                    out.push(MatchRecord::new(qi as u32, ei as u32, iv));
                }
            }
        }
        dedup_matches(&mut out);
        out
    }

    fn device() -> Arc<Device> {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn matches_brute_force_across_distances() {
        let store = sorted_store(50);
        let queries: SegmentStore =
            (0..15).map(|i| seg(i as f64 * 5.0 + 0.3, i as f64 * 1.1, 100 + i as u32)).collect();
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        // Sweep d across regimes: subbin-selective, mixed, all-fallback.
        for d in [0.3, 2.0, 15.0, 200.0] {
            let (got, report) = search.search(&queries, d, 20_000).unwrap();
            let expect = brute(&store, &queries, d);
            assert_eq!(got, expect, "d = {d}");
            assert!(report.comparisons >= report.matches);
        }
    }

    #[test]
    fn fallback_grows_with_d() {
        let store = sorted_store(60);
        let queries = sorted_store(20);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 6, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        let (_, small) = search.search(&queries, 0.1, 20_000).unwrap();
        let (_, large) = search.search(&queries, 1_000.0, 20_000).unwrap();
        assert!(small.fallback_queries < large.fallback_queries);
        assert_eq!(large.fallback_queries, queries.len() as u64);
    }

    #[test]
    fn no_duplicates_without_redo() {
        let store = sorted_store(40);
        let queries = sorted_store(40);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        let (_, report) = search.search(&queries, 1.5, 20_000).unwrap();
        assert_eq!(report.redo_rounds, 0);
        assert_eq!(
            report.raw_matches, report.matches,
            "single-subbin scheme must not produce duplicates"
        );
    }

    #[test]
    fn result_overflow_redo_same_results() {
        let store = sorted_store(40);
        let queries = sorted_store(40);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 4, subbins: 2, sort_by_selector: true },
        )
        .unwrap();
        let (full, _) = search.search(&queries, 4.0, 20_000).unwrap();
        assert!(!full.is_empty());
        let (constrained, report) = search.search(&queries, 4.0, (full.len() / 4).max(2)).unwrap();
        assert_eq!(constrained, full);
        assert!(report.redo_rounds > 0);
    }

    #[test]
    fn divergence_is_visible_with_mixed_selectors() {
        // A d in the mixed regime gives different selectors to different
        // queries; the simulator should report divergent warps only when the
        // selector-sorted order still mixes paths inside one warp.
        let store = sorted_store(100);
        let queries = sorted_store(64);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        let (_, report) = search.search(&queries, 5.0, 20_000).unwrap();
        // Sorting by selector bounds divergence: at most 3 boundary warps
        // (one per selector transition) can diverge.
        assert!(report.divergent_warps <= 3, "divergent warps {}", report.divergent_warps);
    }

    fn wpt_device() -> Arc<Device> {
        let mut c = DeviceConfig::test_tiny();
        c.kernel_shape = KernelShape::WarpPerTile;
        Device::new(c).unwrap()
    }

    #[test]
    fn warp_per_tile_matches_thread_per_query() {
        let store = sorted_store(50);
        let queries: SegmentStore =
            (0..15).map(|i| seg(i as f64 * 5.0 + 0.3, i as f64 * 1.1, 100 + i as u32)).collect();
        let cfg = SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true };
        let tpq = GpuSpatioTemporalSearch::new(device(), &store, cfg).unwrap();
        let wpt = GpuSpatioTemporalSearch::new(wpt_device(), &store, cfg).unwrap();
        // Sweep d across regimes: subbin-selective, mixed, all-fallback.
        for d in [0.3, 2.0, 15.0, 200.0] {
            let (a, ra) = tpq.search(&queries, d, 20_000).unwrap();
            let (b, rb) = wpt.search(&queries, d, 20_000).unwrap();
            assert_eq!(a, b, "d = {d}");
            assert_eq!(ra.comparisons, rb.comparisons, "same candidates refined at d = {d}");
            // Selector-homogeneous tiles: warps never mix control paths.
            assert_eq!(rb.divergent_warps, 0, "d = {d}");
        }
    }

    #[test]
    fn warp_per_tile_redo_preserves_results() {
        let store = sorted_store(40);
        let queries = sorted_store(40);
        let search = GpuSpatioTemporalSearch::new(
            wpt_device(),
            &store,
            SpatioTemporalIndexConfig { bins: 4, subbins: 2, sort_by_selector: true },
        )
        .unwrap();
        let (full, _) = search.search(&queries, 4.0, 20_000).unwrap();
        assert!(!full.is_empty());
        let (constrained, report) = search.search(&queries, 4.0, (full.len() / 4).max(2)).unwrap();
        assert_eq!(constrained, full);
        assert!(report.redo_rounds > 0);
    }

    #[test]
    fn empty_queries() {
        let store = sorted_store(5);
        let search = GpuSpatioTemporalSearch::new(
            device(),
            &store,
            SpatioTemporalIndexConfig { bins: 2, subbins: 2, sort_by_selector: true },
        )
        .unwrap();
        let (m, report) = search.search(&SegmentStore::new(), 1.0, 100).unwrap();
        assert!(m.is_empty());
        assert_eq!(report.matches, 0);
    }
}
