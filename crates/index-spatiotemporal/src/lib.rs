//! `GPUSpatioTemporal`: temporal bins subdivided into spatial subbins
//! (paper §IV-C, Algorithm 3).
//!
//! Entries are assigned to `m` temporal bins exactly as in `GPUTemporal`;
//! additionally each bin is subdivided into `v` *spatial subbins per
//! dimension*, with the constraint that a subbin is wider than the largest
//! spatial extent of any single entry segment (so an entry overlaps at most
//! two adjacent subbins per dimension). Three id arrays `X`, `Y`, `Z` store,
//! per dimension, the entry positions grouped by subbin and — within a
//! subbin — by temporal bin, in `(subbin, bin)` lexicographic order. That
//! layout makes the entries of *one* subbin across a contiguous run of
//! temporal bins a single contiguous array range, encodable in two integers.
//!
//! For each query the host picks the dimension in which the (inflated)
//! query interval stays inside a single subbin and overlaps the fewest
//! entries, and ships `(array selector, index range)`. A query that spans
//! multiple subbins in **all three** dimensions would produce duplicate
//! results, so it falls back to the purely temporal scheme — the paper
//! reports this fallback dominating on dense data at large `d` (§V-E).
//! The schedule is sorted by array selector to reduce warp divergence.

#![forbid(unsafe_code)]

pub mod index;
pub mod search;

pub use index::{
    ScheduleEntry, Selector, SpatioTemporalIndex, SpatioTemporalIndexConfig,
    SpatioTemporalIndexConfigBuilder,
};
pub use search::GpuSpatioTemporalSearch;
