//! The spatiotemporal (bins × subbins) index.

use serde::{Deserialize, Serialize};
use tdts_geom::{ExpireDelta, Segment, SegmentStore, StoreStats};
use tdts_gpu_sim::SearchError;
use tdts_index_temporal::{TemporalIndex, TemporalIndexConfig};

/// Index parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatioTemporalIndexConfig {
    /// Temporal bin count `m` (as in `GPUTemporal`).
    pub bins: usize,
    /// Requested spatial subbins per dimension `v`; the effective value is
    /// capped by the constraint that subbins must be wider than the largest
    /// single-segment extent (§IV-C1).
    pub subbins: usize,
    /// Order query execution by array selector so warps see uniform control
    /// paths ("we sort S based on the lookup array specification so as to
    /// reduce thread divergence", §IV-C2). Disable only for the divergence
    /// ablation.
    pub sort_by_selector: bool,
}

impl Default for SpatioTemporalIndexConfig {
    fn default() -> Self {
        SpatioTemporalIndexConfig { bins: 1_000, subbins: 4, sort_by_selector: true }
    }
}

impl SpatioTemporalIndexConfig {
    /// A builder starting from the defaults. Prefer this over struct-literal
    /// construction: new fields get defaults instead of breaking callers.
    pub fn builder() -> SpatioTemporalIndexConfigBuilder {
        SpatioTemporalIndexConfigBuilder { config: SpatioTemporalIndexConfig::default() }
    }
}

/// Builder for [`SpatioTemporalIndexConfig`].
#[derive(Debug, Clone)]
pub struct SpatioTemporalIndexConfigBuilder {
    config: SpatioTemporalIndexConfig,
}

impl SpatioTemporalIndexConfigBuilder {
    /// Temporal bin count `m`.
    pub fn bins(mut self, m: usize) -> Self {
        self.config.bins = m;
        self
    }

    /// Requested spatial subbins per dimension `v`.
    pub fn subbins(mut self, v: usize) -> Self {
        self.config.subbins = v;
        self
    }

    /// Order query execution by array selector (divergence reduction).
    pub fn sort_by_selector(mut self, on: bool) -> Self {
        self.config.sort_by_selector = on;
        self
    }

    /// Produce the configuration (validated when the index is built).
    pub fn build(self) -> SpatioTemporalIndexConfig {
        self.config
    }
}

/// Which lookup the kernel uses for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selector {
    /// Use the id array of the given dimension (0 = X, 1 = Y, 2 = Z).
    Dim(u8),
    /// Query spans multiple subbins in every dimension: fall back to the
    /// purely temporal scheme (`S[gid].arrayXYZ = -1` in Algorithm 3).
    Temporal,
    /// No temporally overlapping entries at all.
    Empty,
}

/// One schedule entry: the lookup selector plus a half-open index range
/// (into the selected dimension array, or directly into the entry database
/// for the temporal fallback). Encoded in 4 integers on the device, exactly
/// the paper's fixed-size, alignment-preserving encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    pub selector: Selector,
    pub lo: u32,
    pub hi: u32,
}

impl ScheduleEntry {
    /// Number of candidates this entry scans.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// True if nothing will be scanned.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Device encoding: `[selector, lo, hi, 0]` with selectors 0–2 = X/Y/Z,
    /// 3 = temporal fallback, 4 = empty.
    pub fn encode(&self) -> [u32; 4] {
        let sel = match self.selector {
            Selector::Dim(d) => d as u32,
            Selector::Temporal => 3,
            Selector::Empty => 4,
        };
        [sel, self.lo, self.hi, 0]
    }
}

/// The spatiotemporal index: a [`TemporalIndex`] plus per-dimension id
/// arrays in `(subbin, bin)` lexicographic layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatioTemporalIndex {
    temporal: TemporalIndex,
    /// Effective subbin count (requested `v` capped by the extent
    /// constraint).
    v: usize,
    /// Temporal bin count `m`.
    m: usize,
    /// Per-dimension minimum coordinate of the database volume.
    lo: [f64; 3],
    /// Per-dimension subbin width.
    width: [f64; 3],
    /// The `X`, `Y`, `Z` id arrays.
    pub arrays: [Vec<u32>; 3],
    /// Per dimension: half-open ranges into the array, indexed `j * m + i`
    /// for subbin `j`, temporal bin `i`.
    pub ranges: [Vec<[u32; 2]>; 3],
}

impl SpatioTemporalIndex {
    /// Build over a `t_start`-sorted, non-empty store. Violations surface
    /// as the same [`SearchError`] variants [`TemporalIndex::build`] uses.
    pub fn build(
        store: &SegmentStore,
        config: SpatioTemporalIndexConfig,
    ) -> Result<SpatioTemporalIndex, SearchError> {
        let stats = store.stats().ok_or(SearchError::EmptyDataset)?;
        SpatioTemporalIndex::build_with_stats(store, &stats, config)
    }

    /// [`build`](SpatioTemporalIndex::build) with the store's [`StoreStats`]
    /// supplied by the caller, so one stats scan can be shared across every
    /// index built on the same store.
    pub fn build_with_stats(
        store: &SegmentStore,
        stats: &StoreStats,
        config: SpatioTemporalIndexConfig,
    ) -> Result<SpatioTemporalIndex, SearchError> {
        if config.subbins < 1 {
            return Err(SearchError::InvalidConfig("need at least one subbin".into()));
        }
        let temporal = TemporalIndex::build_with_stats(
            store,
            stats,
            TemporalIndexConfig { bins: config.bins },
        )?;
        let m = config.bins;

        // Cap v by the constraint v <= extent / max_segment_extent in every
        // dimension (zero-extent dimensions allow any v: every segment is a
        // point there).
        let mut v = config.subbins;
        let mut lo = [0.0f64; 3];
        let mut extent = [0.0f64; 3];
        for d in 0..3 {
            lo[d] = stats.bounds.lo.coord(d);
            extent[d] = stats.bounds.hi.coord(d) - lo[d];
            let max_ext = stats.max_segment_extent[d];
            if max_ext > 0.0 {
                v = v.min(((extent[d] / max_ext).floor() as usize).max(1));
            }
        }
        let mut width = [0.0f64; 3];
        for d in 0..3 {
            width[d] = if extent[d] > 0.0 { extent[d] / v as f64 } else { 1.0 };
        }

        // Populate the per-dimension arrays in (subbin, bin) order.
        let mut arrays: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut ranges: [Vec<[u32; 2]>; 3] =
            [Vec::with_capacity(v * m), Vec::with_capacity(v * m), Vec::with_capacity(v * m)];
        let segs = store.segments();
        for d in 0..3 {
            for j in 0..v {
                let sub_lo = lo[d] + j as f64 * width[d];
                let sub_hi = sub_lo + width[d];
                for i in 0..m {
                    let (b_lo, b_hi) = temporal.bin_range(i);
                    let start = arrays[d].len() as u32;
                    for pos in b_lo..b_hi {
                        let s = &segs[pos as usize];
                        // Closed-interval overlap so boundary segments are
                        // never lost (they may appear in two subbins).
                        if s.min_coord(d) <= sub_hi && s.max_coord(d) >= sub_lo {
                            arrays[d].push(pos);
                        }
                    }
                    ranges[d].push([start, arrays[d].len() as u32]);
                }
            }
        }

        Ok(SpatioTemporalIndex { temporal, v, m, lo, width, arrays, ranges })
    }

    /// The underlying temporal index.
    pub fn temporal(&self) -> &TemporalIndex {
        &self.temporal
    }

    /// Extend the index over store entries `from..` (time-ordered appends).
    ///
    /// The temporal directory may grow new bins past the old extent, which
    /// changes the `(subbin, bin)` layout stride: every per-dimension row is
    /// re-spliced, copying old chunks and appending the tail entries of each
    /// bin. Tail entries are placed by their clamped subbin index span —
    /// the same clamp [`schedule_for`](Self::schedule_for) applies to query
    /// intervals, so an entry overlapping a query's inflated interval always
    /// shares its subbin, even for entries outside the build-time volume.
    pub fn append(&mut self, store: &SegmentStore, from: usize) -> Result<(), SearchError> {
        let old_m = self.temporal.bins();
        self.temporal.append(store, from)?;
        let new_m = self.temporal.bins();
        let segs = store.segments();

        for d in 0..3 {
            let mut arrays = Vec::with_capacity(self.arrays[d].len() + (segs.len() - from));
            let mut ranges = Vec::with_capacity(self.v * new_m);
            for j in 0..self.v {
                for i in 0..new_m {
                    let start = arrays.len() as u32;
                    if i < old_m {
                        let [a, b] = self.ranges[d][j * old_m + i];
                        arrays.extend_from_slice(&self.arrays[d][a as usize..b as usize]);
                    }
                    let (b_lo, b_hi) = self.temporal.bin_range(i);
                    let lo = (b_lo as usize).max(from);
                    for (pos, s) in segs.iter().enumerate().take(b_hi as usize).skip(lo) {
                        let (s_lo, s_hi) = self.subbin_span(d, s.min_coord(d), s.max_coord(d));
                        if (s_lo..=s_hi).contains(&j) {
                            arrays.push(pos as u32);
                        }
                    }
                    ranges.push([start, arrays.len() as u32]);
                }
            }
            self.arrays[d] = arrays;
            self.ranges[d] = ranges;
        }
        self.m = new_m;
        Ok(())
    }

    /// Drop expired entries from the temporal directory and every
    /// per-dimension id array, renumbering survivors to their post-expiry
    /// store positions. The subbin geometry and bin layout are unchanged.
    pub fn expire(&mut self, store: &SegmentStore, delta: &ExpireDelta) -> Result<(), SearchError> {
        self.temporal.expire(store, delta)?;
        for d in 0..3 {
            let mut arrays = Vec::with_capacity(self.arrays[d].len());
            let mut ranges = Vec::with_capacity(self.ranges[d].len());
            for r in &self.ranges[d] {
                let start = arrays.len() as u32;
                for &pos in &self.arrays[d][r[0] as usize..r[1] as usize] {
                    if let Some(np) = delta.remap(pos as usize) {
                        arrays.push(np as u32);
                    }
                }
                ranges.push([start, arrays.len() as u32]);
            }
            self.arrays[d] = arrays;
            self.ranges[d] = ranges;
        }
        Ok(())
    }

    /// Effective subbins per dimension (after the extent-constraint cap).
    pub fn effective_subbins(&self) -> usize {
        self.v
    }

    /// Subbin index range `(s_lo, s_hi)` (inclusive, clamped) overlapped by
    /// `[lo, hi]` in dimension `d`.
    fn subbin_span(&self, d: usize, lo: f64, hi: f64) -> (usize, usize) {
        let to_idx = |x: f64| -> usize {
            let i = ((x - self.lo[d]) / self.width[d]).floor();
            (i.max(0.0) as usize).min(self.v - 1)
        };
        (to_idx(lo), to_idx(hi))
    }

    /// Compute the schedule entry for one query at distance `d`
    /// (host side, §IV-C2).
    pub fn schedule_for(&self, q: &Segment, d: f64) -> ScheduleEntry {
        let Some((i_lo, i_hi)) = self.temporal.candidate_bins(q) else {
            return ScheduleEntry { selector: Selector::Empty, lo: 0, hi: 0 };
        };

        // Per dimension: usable iff the inflated query interval stays within
        // one subbin; among usable dimensions pick the fewest candidates.
        let mut best: Option<(u32, u8, u32, u32)> = None; // (count, dim, lo, hi)
        for dim in 0..3usize {
            let q_lo = q.min_coord(dim) - d;
            let q_hi = q.max_coord(dim) + d;
            let (s_lo, s_hi) = self.subbin_span(dim, q_lo, q_hi);
            if s_lo != s_hi {
                continue; // spans multiple subbins in this dimension
            }
            let first = self.ranges[dim][s_lo * self.m + i_lo][0];
            let last = self.ranges[dim][s_lo * self.m + i_hi][1];
            let count = last.saturating_sub(first);
            if best.is_none_or(|(c, ..)| count < c) {
                best = Some((count, dim as u8, first, last.max(first)));
            }
        }

        match best {
            Some((_, dim, lo, hi)) => ScheduleEntry { selector: Selector::Dim(dim), lo, hi },
            None => {
                // Fallback to the temporal scheme: contiguous entry range.
                match self.temporal.candidate_range(q) {
                    Some((lo, hi)) => ScheduleEntry { selector: Selector::Temporal, lo, hi },
                    None => ScheduleEntry { selector: Selector::Empty, lo: 0, hi: 0 },
                }
            }
        }
    }

    /// Check structural invariants against the store the index was built
    /// from; returns a description of the first violation.
    pub fn validate(&self, store: &SegmentStore) -> Result<(), String> {
        self.temporal.validate(store)?;
        for d in 0..3 {
            if self.ranges[d].len() != self.v * self.m {
                return Err(format!("dim {d}: expected {} ranges", self.v * self.m));
            }
            // Ranges tile the array contiguously in (subbin, bin) order.
            let mut cursor = 0u32;
            for (k, r) in self.ranges[d].iter().enumerate() {
                if r[0] != cursor || r[1] < r[0] {
                    return Err(format!("dim {d}: range {k} not contiguous"));
                }
                cursor = r[1];
            }
            if cursor as usize != self.arrays[d].len() {
                return Err(format!("dim {d}: ranges do not cover the array"));
            }
            // Every entry appears in at least one subbin of its bin and at
            // most two (the subbin-width constraint).
            let mut count = vec![0u32; store.len()];
            for &pos in &self.arrays[d] {
                count[pos as usize] += 1;
            }
            if let Some(pos) = count.iter().position(|&c| c == 0) {
                return Err(format!("dim {d}: entry {pos} missing from array"));
            }
            // The width constraint bounds overlap at two subbins; exact
            // boundary alignment can touch a third (closed intervals).
            if let Some(pos) = count.iter().position(|&c| c > 3) {
                return Err(format!("dim {d}: entry {pos} appears {} times", count[pos]));
            }
        }
        Ok(())
    }

    /// Extra index memory relative to `GPUTemporal`, in bytes — the paper
    /// states `>= 3|D| * 4` bytes for the three id arrays.
    pub fn extra_bytes(&self) -> usize {
        self.arrays.iter().map(|a| a.len() * 4).sum::<usize>()
            + self.ranges.iter().map(|r| r.len() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdts_geom::{Point3, SegId, TrajId};

    fn seg(x: f64, t0: f64, id: u32) -> Segment {
        // Spread in all three dimensions so the subbin constraint does not
        // collapse v to 1.
        Segment::new(
            Point3::new(x, x * 0.5, x * 0.3),
            Point3::new(x + 1.0, x * 0.5 + 1.0, x * 0.3 + 1.0),
            t0,
            t0 + 1.0,
            SegId(id),
            TrajId(id),
        )
    }

    fn store(n: usize) -> SegmentStore {
        (0..n).map(|i| seg(i as f64 * 2.0, i as f64 * 0.25, i as u32)).collect()
    }

    #[test]
    fn arrays_contain_every_entry_per_dim() {
        let s = store(40);
        let idx = SpatioTemporalIndex::build(
            &s,
            SpatioTemporalIndexConfig { bins: 8, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        for d in 0..3 {
            let mut seen = vec![false; s.len()];
            for &pos in &idx.arrays[d] {
                seen[pos as usize] = true;
            }
            assert!(seen.iter().all(|&x| x), "dim {d} missing entries");
            // At most doubled (entries overlap <= 2 subbins).
            assert!(idx.arrays[d].len() <= 2 * s.len());
        }
        assert!(idx.extra_bytes() >= 3 * s.len() * 4);
    }

    #[test]
    fn subbin_constraint_caps_v() {
        // Segments nearly as long as the whole extent force v = 1.
        let s: SegmentStore = (0..10)
            .map(|i| {
                Segment::new(
                    Point3::new(0.0, 0.0, 0.0),
                    Point3::new(10.0, 10.0, 10.0),
                    i as f64,
                    i as f64 + 1.0,
                    SegId(i),
                    TrajId(i),
                )
            })
            .collect();
        let idx = SpatioTemporalIndex::build(
            &s,
            SpatioTemporalIndexConfig { bins: 4, subbins: 16, sort_by_selector: true },
        )
        .unwrap();
        assert_eq!(idx.effective_subbins(), 1);
    }

    #[test]
    fn schedule_covers_all_temporal_overlaps() {
        let s = store(60);
        let idx = SpatioTemporalIndex::build(
            &s,
            SpatioTemporalIndexConfig { bins: 10, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        for qi in 0..30 {
            let q = seg(qi as f64 * 1.7, qi as f64 * 0.3, 1000);
            let d = 0.8;
            let entry = idx.schedule_for(&q, d);
            // Collect the candidate entry positions the schedule yields.
            let candidates: Vec<u32> = match entry.selector {
                Selector::Dim(dim) => {
                    idx.arrays[dim as usize][entry.lo as usize..entry.hi as usize].to_vec()
                }
                Selector::Temporal => (entry.lo..entry.hi).collect(),
                Selector::Empty => Vec::new(),
            };
            // Every true match must be among the candidates.
            for (pos, e) in s.iter().enumerate() {
                if tdts_geom::within_distance(&q, e, d).is_some() {
                    assert!(
                        candidates.contains(&(pos as u32)),
                        "query {qi}: match {pos} not in candidates ({:?})",
                        entry.selector
                    );
                }
            }
        }
    }

    #[test]
    fn validate_passes_for_fresh_index() {
        let s = store(50);
        let idx = SpatioTemporalIndex::build(
            &s,
            SpatioTemporalIndexConfig { bins: 6, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        assert!(idx.validate(&s).is_ok());
        let other = store(3);
        assert!(idx.validate(&other).is_err());
    }

    #[test]
    fn large_d_falls_back_to_temporal() {
        let s = store(30);
        let idx = SpatioTemporalIndex::build(
            &s,
            SpatioTemporalIndexConfig { bins: 4, subbins: 4, sort_by_selector: true },
        )
        .unwrap();
        let q = seg(10.0, 2.0, 99);
        // d much larger than a subbin: spans multiple subbins in all dims.
        let entry = idx.schedule_for(&q, 1_000.0);
        assert_eq!(entry.selector, Selector::Temporal);
        // Temporally disjoint query: empty.
        let far = seg(0.0, 1_000.0, 98);
        assert_eq!(idx.schedule_for(&far, 1.0).selector, Selector::Empty);
    }

    #[test]
    fn selector_encoding() {
        assert_eq!(
            ScheduleEntry { selector: Selector::Dim(2), lo: 5, hi: 9 }.encode(),
            [2, 5, 9, 0]
        );
        assert_eq!(
            ScheduleEntry { selector: Selector::Temporal, lo: 1, hi: 2 }.encode(),
            [3, 1, 2, 0]
        );
        let e = ScheduleEntry { selector: Selector::Empty, lo: 0, hi: 0 };
        assert_eq!(e.encode(), [4, 0, 0, 0]);
        assert!(e.is_empty());
        assert_eq!(ScheduleEntry { selector: Selector::Dim(0), lo: 3, hi: 10 }.len(), 7);
    }

    #[test]
    fn picks_most_selective_dimension() {
        // Entries spread widely along x but only mildly in y/z: the x array
        // is the most selective for a small query.
        let s: SegmentStore = (0..64)
            .map(|i| {
                let y = (i % 4) as f64 * 1.5;
                Segment::new(
                    Point3::new(i as f64, y, y),
                    Point3::new(i as f64 + 0.5, y + 0.5, y + 0.5),
                    (i / 8) as f64 * 0.125,
                    (i / 8) as f64 * 0.125 + 1.0,
                    SegId(i as u32),
                    TrajId(i as u32),
                )
            })
            .collect();
        let idx = SpatioTemporalIndex::build(
            &s,
            SpatioTemporalIndexConfig { bins: 2, subbins: 8, sort_by_selector: true },
        )
        .unwrap();
        assert!(idx.effective_subbins() > 1);
        let q = Segment::new(
            Point3::new(5.0, 0.0, 0.0),
            Point3::new(5.5, 0.5, 0.5),
            0.5,
            1.0,
            SegId(0),
            TrajId(999),
        );
        let entry = idx.schedule_for(&q, 0.1);
        assert_eq!(entry.selector, Selector::Dim(0), "x should be most selective");
    }
}
