//! Device-resident segment databases in either memory layout.
//!
//! [`DeviceSegments`] hides the choice between the array-of-structs layout
//! (one 72-byte [`Segment`] per element, read whole) and the columnar
//! struct-of-arrays layout (eight `f64` columns, read per field). The layout
//! is selected by [`DeviceConfig::segment_layout`] at allocation time and is
//! transparent to the kernels: every accessor charges exactly the bytes the
//! layout makes a lane touch.
//!
//! Accounting rules (see DESIGN.md §"Data layout"):
//!
//! * AoS reads always charge `size_of::<Segment>()` = 72 bytes — the whole
//!   struct travels even when only the timestamps are needed.
//! * Columnar reads charge 8 bytes per column element actually touched. The
//!   distance compare reads `t_start`/`t_end` first (16 bytes) and loads the
//!   six coordinate columns (48 bytes) only when the temporal overlap test
//!   passes, so temporally-rejected candidates cost 16 bytes instead of 72.
//! * Segment ids never reach the device in the columnar layout (result
//!   records carry entry *positions*), so a full columnar row is 64 bytes
//!   and uploads are charged accordingly.
//!
//! [`DeviceConfig::segment_layout`]: tdts_gpu_sim::DeviceConfig

use std::sync::Arc;
use tdts_geom::{
    within_distance, Point3, SegId, Segment, SegmentColumns, SegmentStore, TimeInterval, TrajId,
};
use tdts_gpu_sim::{
    ColumnarBuffer, Device, DeviceBuffer, Lane, OutOfDeviceMemory, SegmentLayout, Warp,
};

/// Column indices of the canonical device order (matching
/// [`SegmentColumns::f64_columns`]).
const COL_SX: usize = 0;
const COL_SY: usize = 1;
const COL_SZ: usize = 2;
const COL_EX: usize = 3;
const COL_EY: usize = 4;
const COL_EZ: usize = 5;
const COL_TS: usize = 6;
const COL_TE: usize = 7;

/// Bytes of one columnar row: eight `f64` fields, ids not stored.
pub const COLUMNAR_ROW_BYTES: u64 = 8 * std::mem::size_of::<f64>() as u64;

/// A segment database (or query set) resident in device memory, in the
/// layout chosen by the device configuration.
#[derive(Debug)]
pub enum DeviceSegments {
    /// Array of structs: one [`Segment`] per element.
    Aos(DeviceBuffer<Segment>),
    /// Struct of arrays: eight `f64` columns in the canonical order of
    /// [`SegmentColumns::f64_columns`]; ids stay on the host.
    Columnar(ColumnarBuffer<f64>),
}

impl DeviceSegments {
    /// Place `segments` in device memory *offline* (no transfer charge) in
    /// the device's configured layout.
    pub fn alloc(
        device: &Arc<Device>,
        segments: &[Segment],
    ) -> Result<DeviceSegments, OutOfDeviceMemory> {
        match device.config().segment_layout {
            SegmentLayout::Aos => {
                Ok(DeviceSegments::Aos(device.alloc_from_host(segments.to_vec())?))
            }
            SegmentLayout::Columnar => {
                let cols = SegmentColumns::from_segments(segments);
                Ok(DeviceSegments::Columnar(device.alloc_columns(&cols.f64_columns())?))
            }
        }
    }

    /// Place a whole [`SegmentStore`] in device memory *offline*, reading
    /// the store's generation-tagged columnar mirror for the columnar
    /// layout — repeated builds (or a compaction rebuild) at the same store
    /// generation share one host-side transpose, and a mirror from a
    /// previous generation can never be shipped (the tag forces a fresh
    /// transpose after any mutation).
    pub fn alloc_store(
        device: &Arc<Device>,
        store: &SegmentStore,
    ) -> Result<DeviceSegments, OutOfDeviceMemory> {
        match device.config().segment_layout {
            SegmentLayout::Aos => {
                Ok(DeviceSegments::Aos(device.alloc_from_host(store.segments().to_vec())?))
            }
            SegmentLayout::Columnar => {
                let cols = store.columns();
                Ok(DeviceSegments::Columnar(device.alloc_columns(&cols.f64_columns())?))
            }
        }
    }

    /// Upload `segments` *online*, charging the host-to-device transfer for
    /// exactly the bytes the layout ships (72 per segment AoS, 64 columnar).
    pub fn upload(
        device: &Arc<Device>,
        segments: &[Segment],
    ) -> Result<DeviceSegments, OutOfDeviceMemory> {
        match device.config().segment_layout {
            SegmentLayout::Aos => Ok(DeviceSegments::Aos(device.upload(segments.to_vec())?)),
            SegmentLayout::Columnar => {
                let cols = SegmentColumns::from_segments(segments);
                Ok(DeviceSegments::Columnar(device.upload_columns(&cols.f64_columns())?))
            }
        }
    }

    /// Append `segments` to the resident database in place, *offline* (no
    /// transfer charge, like [`alloc`]) — only the new tail is copied,
    /// existing rows stay put. The device side of generational ingestion.
    ///
    /// [`alloc`]: DeviceSegments::alloc
    pub fn extend(&mut self, segments: &[Segment]) -> Result<(), OutOfDeviceMemory> {
        match self {
            DeviceSegments::Aos(buf) => buf.extend_from_host(segments),
            DeviceSegments::Columnar(cols) => {
                let tail = SegmentColumns::from_segments(segments);
                cols.extend_columns(&tail.f64_columns())
            }
        }
    }

    /// Remove the rows at the ascending positions in `removed`, preserving
    /// survivor order — the expire side of generational ingestion. Freed
    /// device bytes are returned to the allocator.
    pub fn remove_positions(&mut self, removed: &[u32]) {
        match self {
            DeviceSegments::Aos(buf) => buf.remove_positions(removed),
            DeviceSegments::Columnar(cols) => cols.remove_positions(removed),
        }
    }

    /// The layout this buffer was allocated in.
    pub fn layout(&self) -> SegmentLayout {
        match self {
            DeviceSegments::Aos(_) => SegmentLayout::Aos,
            DeviceSegments::Columnar(_) => SegmentLayout::Columnar,
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        match self {
            DeviceSegments::Aos(buf) => buf.len(),
            DeviceSegments::Columnar(cols) => cols.len(),
        }
    }

    /// True if no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device bytes occupied (also the bytes an [`upload`] charged).
    ///
    /// [`upload`]: DeviceSegments::upload
    pub fn size_bytes(&self) -> usize {
        match self {
            DeviceSegments::Aos(buf) => buf.size_bytes(),
            DeviceSegments::Columnar(cols) => cols.size_bytes(),
        }
    }

    /// Bytes one *full* segment read charges in this layout.
    pub fn row_bytes(&self) -> u64 {
        match self {
            DeviceSegments::Aos(_) => std::mem::size_of::<Segment>() as u64,
            DeviceSegments::Columnar(_) => COLUMNAR_ROW_BYTES,
        }
    }

    /// Reconstruct segment `pos` *without* cost accounting. Host-side use
    /// only (the warp-broadcast prologue reads through the leader and
    /// charges via [`broadcast`]). Columnar rows carry placeholder ids.
    ///
    /// [`broadcast`]: DeviceSegments::broadcast
    pub fn host_segment(&self, pos: usize) -> Segment {
        match self {
            DeviceSegments::Aos(buf) => buf.as_slice()[pos],
            DeviceSegments::Columnar(cols) => Segment::new(
                Point3::new(
                    cols.column(COL_SX)[pos],
                    cols.column(COL_SY)[pos],
                    cols.column(COL_SZ)[pos],
                ),
                Point3::new(
                    cols.column(COL_EX)[pos],
                    cols.column(COL_EY)[pos],
                    cols.column(COL_EZ)[pos],
                ),
                cols.column(COL_TS)[pos],
                cols.column(COL_TE)[pos],
                SegId(0),
                TrajId(0),
            ),
        }
    }

    /// Read the whole segment at `pos` from a kernel lane, charging the
    /// layout's full row (72 bytes AoS, 64 bytes columnar — every column is
    /// touched). Columnar rows carry placeholder ids; no kernel consumes
    /// them (result records store entry positions).
    pub fn read_segment(&self, lane: &mut Lane, pos: usize) -> Segment {
        match self {
            DeviceSegments::Aos(buf) => buf.read(lane, pos),
            DeviceSegments::Columnar(cols) => Segment::new(
                Point3::new(
                    cols.read(lane, COL_SX, pos),
                    cols.read(lane, COL_SY, pos),
                    cols.read(lane, COL_SZ, pos),
                ),
                Point3::new(
                    cols.read(lane, COL_EX, pos),
                    cols.read(lane, COL_EY, pos),
                    cols.read(lane, COL_EZ, pos),
                ),
                cols.read(lane, COL_TS, pos),
                cols.read(lane, COL_TE, pos),
                SegId(0),
                TrajId(0),
            ),
        }
    }

    /// Warp-leader read of segment `pos`, broadcast to the warp
    /// (`__shfl_sync` analogue): one converged row read charged at warp
    /// scope.
    pub fn broadcast(&self, warp: &mut Warp, pos: usize) -> Segment {
        let q = self.host_segment(pos);
        warp.gmem_read(self.row_bytes());
        q
    }

    /// The refinement memory access: load entry `pos` and run the continuous
    /// distance test against query `q`.
    ///
    /// AoS reads the whole 72-byte struct unconditionally. Columnar reads
    /// the two timestamp columns (16 bytes), applies the same temporal
    /// overlap test [`within_distance`] starts with, and loads the six
    /// coordinate columns (48 more bytes) only for candidates that overlap
    /// in time — the result is bit-identical, only the charged bytes differ.
    ///
    /// Instruction cost is *not* charged here (the caller charges the fixed
    /// compare cost whatever the outcome, keeping the comparison count and
    /// instruction accounting layout-independent).
    pub fn compare_within(
        &self,
        lane: &mut Lane,
        pos: usize,
        q: &Segment,
        d: f64,
    ) -> Option<TimeInterval> {
        match self {
            DeviceSegments::Aos(buf) => {
                let entry = buf.read(lane, pos);
                within_distance(q, &entry, d)
            }
            DeviceSegments::Columnar(cols) => {
                let t_start = cols.read(lane, COL_TS, pos);
                let t_end = cols.read(lane, COL_TE, pos);
                // Identical predicate to within_distance's first step:
                // temporally disjoint candidates are rejected after touching
                // only the timestamp columns.
                q.time_span().intersect(&TimeInterval::new(t_start, t_end))?;
                let entry = Segment::new(
                    Point3::new(
                        cols.read(lane, COL_SX, pos),
                        cols.read(lane, COL_SY, pos),
                        cols.read(lane, COL_SZ, pos),
                    ),
                    Point3::new(
                        cols.read(lane, COL_EX, pos),
                        cols.read(lane, COL_EY, pos),
                        cols.read(lane, COL_EZ, pos),
                    ),
                    t_start,
                    t_end,
                    SegId(0),
                    TrajId(0),
                );
                within_distance(q, &entry, d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdts_gpu_sim::DeviceConfig;

    fn seg(x: f64, t0: f64, id: u32) -> Segment {
        Segment::new(
            Point3::new(x, 0.0, 0.0),
            Point3::new(x + 1.0, 0.5, 0.0),
            t0,
            t0 + 1.0,
            SegId(id),
            TrajId(id),
        )
    }

    fn device(layout: SegmentLayout) -> Arc<Device> {
        let mut c = DeviceConfig::test_tiny();
        c.segment_layout = layout;
        Device::new(c).unwrap()
    }

    #[test]
    fn layout_follows_device_config() {
        let segs = vec![seg(0.0, 0.0, 3), seg(2.0, 1.0, 4)];
        let aos = DeviceSegments::alloc(&device(SegmentLayout::Aos), &segs).unwrap();
        assert_eq!(aos.layout(), SegmentLayout::Aos);
        assert_eq!(aos.size_bytes(), 2 * std::mem::size_of::<Segment>());
        let col = DeviceSegments::alloc(&device(SegmentLayout::Columnar), &segs).unwrap();
        assert_eq!(col.layout(), SegmentLayout::Columnar);
        assert_eq!(col.size_bytes(), 2 * COLUMNAR_ROW_BYTES as usize);
        assert_eq!(aos.len(), col.len());
    }

    #[test]
    fn reads_agree_across_layouts_up_to_ids() {
        let segs: Vec<Segment> = (0..6).map(|i| seg(i as f64 * 2.0, i as f64 * 0.3, i)).collect();
        let aos = DeviceSegments::alloc(&device(SegmentLayout::Aos), &segs).unwrap();
        let col = DeviceSegments::alloc(&device(SegmentLayout::Columnar), &segs).unwrap();
        let mut warp = Warp::standalone(1);
        warp.for_each_lane(|lane| {
            for (i, s) in segs.iter().enumerate() {
                let a = aos.read_segment(lane, i);
                let c = col.read_segment(lane, i);
                assert_eq!(a.start, c.start);
                assert_eq!(a.end, c.end);
                assert_eq!(a.t_start, c.t_start);
                assert_eq!(a.t_end, c.t_end);
                assert_eq!(&a, s);
            }
        });
    }

    #[test]
    fn columnar_full_read_charges_64_bytes() {
        let segs = vec![seg(0.0, 0.0, 0)];
        let col = DeviceSegments::alloc(&device(SegmentLayout::Columnar), &segs).unwrap();
        let mut warp = Warp::standalone(1);
        warp.for_each_lane(|lane| {
            col.read_segment(lane, 0);
            assert_eq!(lane.counters().gmem_read_bytes, 64);
        });
    }

    #[test]
    fn temporal_reject_touches_only_timestamps() {
        // Query at t in [100, 101]; entry at t in [0, 1]: disjoint.
        let segs = vec![seg(0.0, 0.0, 0)];
        let q = seg(0.0, 100.0, 9);
        let col = DeviceSegments::alloc(&device(SegmentLayout::Columnar), &segs).unwrap();
        let aos = DeviceSegments::alloc(&device(SegmentLayout::Aos), &segs).unwrap();
        let mut warp = Warp::standalone(2);
        warp.for_each_lane(|lane| {
            if lane.lane_index() == 0 {
                assert!(col.compare_within(lane, 0, &q, 5.0).is_none());
                assert_eq!(lane.counters().gmem_read_bytes, 16, "timestamps only");
            } else {
                assert!(aos.compare_within(lane, 0, &q, 5.0).is_none());
                assert_eq!(lane.counters().gmem_read_bytes, 72, "whole struct");
            }
        });
    }

    #[test]
    fn extend_and_remove_track_store_mutations() {
        for layout in [SegmentLayout::Aos, SegmentLayout::Columnar] {
            let dev = device(layout);
            let mut store: SegmentStore =
                (0..5).map(|i| seg(i as f64, i as f64 * 0.5, i)).collect();
            let mut resident = DeviceSegments::alloc_store(&dev, &store).unwrap();
            let delta = store.append(&[seg(9.0, 5.0, 9), seg(10.0, 6.0, 10)]);
            resident.extend(&store.segments()[delta.from..]).unwrap();
            assert_eq!(resident.len(), store.len());
            let expired = store.expire_before(2.0);
            assert!(!expired.removed.is_empty());
            resident.remove_positions(&expired.removed);
            assert_eq!(resident.len(), store.len());
            for (i, s) in store.segments().iter().enumerate() {
                let r = resident.host_segment(i);
                assert_eq!(r.start, s.start, "{layout:?}");
                assert_eq!(r.end, s.end, "{layout:?}");
                assert_eq!(r.t_start, s.t_start, "{layout:?}");
                assert_eq!(r.t_end, s.t_end, "{layout:?}");
            }
        }
    }

    #[test]
    fn compare_results_are_identical_across_layouts() {
        let segs: Vec<Segment> = (0..8).map(|i| seg(i as f64 * 1.5, i as f64 * 0.4, i)).collect();
        let aos = DeviceSegments::alloc(&device(SegmentLayout::Aos), &segs).unwrap();
        let col = DeviceSegments::alloc(&device(SegmentLayout::Columnar), &segs).unwrap();
        let queries: Vec<Segment> =
            (0..5).map(|i| seg(i as f64 * 2.3, i as f64 * 0.7, i)).collect();
        let mut warp = Warp::standalone(1);
        warp.for_each_lane(|lane| {
            for q in &queries {
                for (i, _) in segs.iter().enumerate() {
                    for d in [0.1, 1.0, 10.0] {
                        assert_eq!(
                            aos.compare_within(lane, i, q, d),
                            col.compare_within(lane, i, q, d),
                        );
                    }
                }
            }
        });
    }
}
