//! Query-set preprocessing shared by the temporally-sorted drivers.

use tdts_geom::{MatchRecord, Segment, SegmentStore};

/// A query set sorted by non-decreasing `t_start`, with the permutation
/// back to original positions (results are reported against the caller's
/// ordering). Shared by the temporal, batched-temporal, and spatiotemporal
/// drivers; `GPUSpatial` leaves queries unsorted (§IV-A2).
#[derive(Debug, Clone)]
pub struct SortedQueries {
    /// Query segments in sorted order.
    pub segments: Vec<Segment>,
    /// `original_pos[sorted_idx]` = position in the caller's query store.
    pub original_pos: Vec<u32>,
}

impl SortedQueries {
    /// Sort a query store by `t_start` (stable). Uses IEEE total order, so
    /// a NaN timestamp sorts to the end instead of aborting the search.
    pub fn from_store(queries: &SegmentStore) -> SortedQueries {
        let mut order: Vec<u32> = (0..queries.len() as u32).collect();
        order.sort_by(|&a, &b| {
            queries.get(a as usize).t_start.total_cmp(&queries.get(b as usize).t_start)
        });
        let segments = order.iter().map(|&i| *queries.get(i as usize)).collect();
        SortedQueries { segments, original_pos: order }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if there are no queries.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Rewrite `query` fields of `matches` from sorted positions back to the
    /// caller's original positions.
    pub fn unpermute(&self, matches: &mut [MatchRecord]) {
        for m in matches {
            m.query = self.original_pos[m.query as usize];
        }
    }
}
