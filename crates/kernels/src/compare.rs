//! Device-side helpers shared by the GPU search kernels.
//!
//! These wrap the `compare()` refinement of Algorithms 1–3 with the cost
//! accounting the simulator needs: reading a segment charges global memory
//! according to the buffer's layout (see [`DeviceSegments`]), the quadratic
//! solve charges a fixed instruction count, and a match is staged into the
//! warp's result stash (committed per warp, or appended per record when the
//! device runs in per-lane mode).

use crate::segments::DeviceSegments;
use tdts_geom::{MatchRecord, Segment, TimeInterval};
use tdts_gpu_sim::{Lane, WarpStash};

/// Instruction cost of one continuous distance comparison (quadratic
/// coefficient computation + root solve + interval clamp). Charged whatever
/// the outcome, so the comparison count and instruction totals are
/// independent of both the distance threshold and the memory layout.
pub const COMPARE_INSTR: u64 = 48;

/// Instruction cost of reading a schedule entry / index arithmetic.
pub const SCHEDULE_INSTR: u64 = 4;

/// Outcome of [`compare_and_stage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Within distance; result stored (or staged for the warp commit).
    Stored,
    /// Within distance but the result buffer was full (per-lane mode only;
    /// warp-aggregated staging never rejects — overflow surfaces at commit).
    Overflow,
    /// Not within distance.
    NoMatch,
}

/// Read the query segment assigned to this thread, charging the access.
#[inline]
pub fn load_query(lane: &mut Lane, queries: &DeviceSegments, query_pos: u32) -> Segment {
    queries.read_segment(lane, query_pos as usize)
}

/// One refinement comparison *without* result staging: load entry
/// `entry_pos` (layout-dependent bytes) and run the continuous distance
/// test, charging the fixed compare cost. Used directly by the counting
/// pass of the two-pass writer.
#[inline]
pub fn compare(
    lane: &mut Lane,
    entries: &DeviceSegments,
    entry_pos: u32,
    q: &Segment,
    d: f64,
) -> Option<TimeInterval> {
    let interval = entries.compare_within(lane, entry_pos as usize, q, d);
    lane.instr(COMPARE_INSTR);
    interval
}

/// Compare entry `entry_pos` against query `q` and stage a result record on
/// a hit — one iteration of the refinement loop of Algorithms 1–3.
#[inline]
pub fn compare_and_stage(
    lane: &mut Lane,
    entries: &DeviceSegments,
    entry_pos: u32,
    q: &Segment,
    query_pos: u32,
    d: f64,
    stash: &mut WarpStash<'_, MatchRecord>,
) -> PushOutcome {
    match compare(lane, entries, entry_pos, q, d) {
        Some(interval) => {
            if stash.stage(lane, MatchRecord::new(query_pos, entry_pos, interval)) {
                PushOutcome::Stored
            } else {
                PushOutcome::Overflow
            }
        }
        None => PushOutcome::NoMatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdts_geom::{Point3, SegId, TrajId};
    use tdts_gpu_sim::{Device, DeviceConfig, ResultWriteMode, SegmentLayout, Warp};

    fn seg(x: f64) -> Segment {
        Segment::new(
            Point3::new(x, 0.0, 0.0),
            Point3::new(x + 1.0, 0.0, 0.0),
            0.0,
            1.0,
            SegId(0),
            TrajId(0),
        )
    }

    fn device(mode: ResultWriteMode, layout: SegmentLayout) -> Arc<Device> {
        let mut c = DeviceConfig::test_tiny();
        c.result_write_mode = mode;
        c.segment_layout = layout;
        Device::new(c).unwrap()
    }

    fn outcomes_per_lane(layout: SegmentLayout, full_row: u64) {
        let dev = device(ResultWriteMode::PerLane, layout);
        let entries = DeviceSegments::alloc(&dev, &[seg(0.0), seg(100.0)]).unwrap();
        let results = dev.alloc_result::<MatchRecord>(1).unwrap();
        let mut warp = Warp::standalone(1);
        warp.for_each_lane(|lane| {
            let mut stash = results.warp_stash();
            let q = seg(0.5);
            assert_eq!(
                compare_and_stage(lane, &entries, 0, &q, 7, 2.0, &mut stash),
                PushOutcome::Stored
            );
            assert_eq!(
                compare_and_stage(lane, &entries, 1, &q, 7, 2.0, &mut stash),
                PushOutcome::NoMatch
            );
            // Buffer now full; a second hit overflows.
            assert_eq!(
                compare_and_stage(lane, &entries, 0, &q, 7, 2.0, &mut stash),
                PushOutcome::Overflow
            );
            assert!(results.overflowed());
            // Costs were charged per record, whatever the layout; memory
            // traffic reflects the rows each layout makes the lane touch.
            assert!(lane.counters().instructions >= 3 * COMPARE_INSTR);
            assert_eq!(lane.counters().gmem_read_bytes, 3 * full_row);
            assert_eq!(lane.counters().atomics, 2);
        });
    }

    #[test]
    fn outcomes_per_lane_aos() {
        // Every comparison reads the whole 72-byte struct; the entry at
        // x = 100 shares the query's time span, so no temporal reject fires.
        outcomes_per_lane(SegmentLayout::Aos, std::mem::size_of::<Segment>() as u64);
    }

    #[test]
    fn outcomes_per_lane_columnar() {
        // All three candidates overlap temporally, so each comparison reads
        // the timestamps (16 B) plus the coordinates (48 B) = one 64-byte
        // row — already cheaper than the 72-byte struct.
        outcomes_per_lane(SegmentLayout::Columnar, 64);
    }

    #[test]
    fn columnar_temporal_reject_halves_traffic() {
        let dev = device(ResultWriteMode::PerLane, SegmentLayout::Columnar);
        // Second entry is temporally disjoint from the query.
        let far = Segment::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            50.0,
            51.0,
            SegId(1),
            TrajId(1),
        );
        let entries = DeviceSegments::alloc(&dev, &[seg(0.0), far]).unwrap();
        let results = dev.alloc_result::<MatchRecord>(8).unwrap();
        let mut warp = Warp::standalone(1);
        warp.for_each_lane(|lane| {
            let mut stash = results.warp_stash();
            let q = seg(0.5);
            assert_eq!(
                compare_and_stage(lane, &entries, 0, &q, 2, 2.0, &mut stash),
                PushOutcome::Stored
            );
            assert_eq!(
                compare_and_stage(lane, &entries, 1, &q, 2, 2.0, &mut stash),
                PushOutcome::NoMatch
            );
            // 64 bytes for the hit + 16 for the temporally-rejected miss;
            // AoS would have charged 2 * 72 = 144.
            assert_eq!(lane.counters().gmem_read_bytes, 64 + 16);
            // The instruction cost is layout-independent: both comparisons
            // charged the full compare cost.
            assert!(lane.counters().instructions >= 2 * COMPARE_INSTR);
        });
    }

    #[test]
    fn outcomes_warp_aggregated() {
        for layout in [SegmentLayout::Aos, SegmentLayout::Columnar] {
            let dev = device(ResultWriteMode::WarpAggregated, layout);
            let entries = DeviceSegments::alloc(&dev, &[seg(0.0), seg(100.0)]).unwrap();
            let mut results = dev.alloc_result::<MatchRecord>(8).unwrap();
            let mut warp = Warp::standalone(1);
            {
                let mut stash = results.warp_stash();
                warp.for_each_lane(|lane| {
                    let q = seg(0.5);
                    // Staging never reports overflow and costs no lane atomics.
                    assert_eq!(
                        compare_and_stage(lane, &entries, 0, &q, 7, 2.0, &mut stash),
                        PushOutcome::Stored
                    );
                    assert_eq!(
                        compare_and_stage(lane, &entries, 1, &q, 7, 2.0, &mut stash),
                        PushOutcome::NoMatch
                    );
                    assert_eq!(
                        compare_and_stage(lane, &entries, 0, &q, 7, 2.0, &mut stash),
                        PushOutcome::Stored
                    );
                    assert_eq!(lane.counters().atomics, 0);
                });
                assert_eq!(stash.commit(&mut warp), 0);
            }
            // One warp flush for both records.
            assert_eq!(warp.counters().atomics, 1);
            assert_eq!(results.drain_to_host().len(), 2);
        }
    }

    #[test]
    fn stored_record_is_correct() {
        for layout in [SegmentLayout::Aos, SegmentLayout::Columnar] {
            let dev = device(ResultWriteMode::PerLane, layout);
            let entries = DeviceSegments::alloc(&dev, &[seg(0.0)]).unwrap();
            let mut results = dev.alloc_result::<MatchRecord>(8).unwrap();
            let mut warp = Warp::standalone(1);
            warp.for_each_lane(|lane| {
                let mut stash = results.warp_stash();
                let q = seg(0.0);
                compare_and_stage(lane, &entries, 0, &q, 3, 0.5, &mut stash);
            });
            let got = results.drain_to_host();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].query, 3);
            assert_eq!(got[0].entry, 0);
            assert_eq!(got[0].interval, TimeInterval::new(0.0, 1.0));
        }
    }
}
