//! Shared GPU kernel pipeline for the distance threshold searches.
//!
//! All four search methods of the paper (GPUSpatial, GPUTemporal, batched
//! GPUTemporal, GPUSpatioTemporal) share one kernel skeleton — iterate the
//! candidates of a query (or a tile of them), run the continuous interaction
//! test, commit hits through the warp-aggregated result stash, and redo
//! overflowing queries — and differ only in how candidates are generated.
//! This crate holds that skeleton once:
//!
//! * [`segments`] — [`DeviceSegments`], the device-resident segment database
//!   in either layout ([AoS](tdts_gpu_sim::SegmentLayout::Aos) structs or
//!   [columnar](tdts_gpu_sim::SegmentLayout::Columnar) `f64` columns), with
//!   layout-aware memory-traffic accounting: the columnar compare touches
//!   only the timestamp columns (16 B) when the temporal prefilter rejects.
//! * [`mod@compare`] — the refinement comparison and its fixed cost model.
//! * [`queries`] — [`SortedQueries`], the `t_start`-sorted query permutation.
//! * [`pipeline`] — the host-side round protocol for both kernel shapes,
//!   parameterised by per-method [`CandidateGenerator`]/[`TileGenerator`]
//!   implementations.

#![forbid(unsafe_code)]

pub mod compare;
pub mod pipeline;
pub mod queries;
pub mod segments;

pub use compare::{
    compare, compare_and_stage, load_query, PushOutcome, COMPARE_INSTR, SCHEDULE_INSTR,
};
pub use pipeline::{
    finish_search, run_thread_per_query, run_warp_per_tile, CandidateGenerator, KernelContext,
    LaneWork, TileGenerator,
};
pub use queries::SortedQueries;
pub use segments::{DeviceSegments, COLUMNAR_ROW_BYTES};
