//! The host-side search skeleton every GPU method shares.
//!
//! All four kernels (GPUSpatial, GPUTemporal, batched GPUTemporal, and
//! GPUSpatioTemporal) run the same outer protocol; only *candidate
//! generation* differs. The protocol, in both kernel shapes:
//!
//! * **Thread-per-query** ([`run_thread_per_query`]): launch one thread per
//!   query (or per execution-order slot), let each thread generate and
//!   refine its candidates, commit matches through the warp stash, and stage
//!   the query id for *redo* when its records were dropped by a full result
//!   buffer. The host drains results and redo ids after every round and
//!   re-launches over the redo set ([`RedoSchedule`]) until it is empty —
//!   the paper's incremental processing of `Q` (§V-E).
//! * **Warp-per-tile** ([`run_warp_per_tile`]): the host cuts every query's
//!   candidate range into fixed-size tiles, a persistent grid of warps pulls
//!   them from a device-side work queue, and each warp's lanes stride one
//!   tile together. An overflowing tile re-queues its whole *query* through
//!   the same redo protocol (several tiles of one query may report the same
//!   overflow, so redo ids are deduplicated first).
//!
//! What a method plugs in is a [`CandidateGenerator`] (thread-per-query) and
//! a [`TileGenerator`] (warp-per-tile): slot decoding, per-query candidate
//! iteration, per-round scratch state, and tile construction. Everything
//! else — result/redo buffers, downloads, ledger charges, report totals,
//! and the final unpermute/dedup ([`finish_search`]) — lives here once.

use crate::compare::{compare_and_stage, PushOutcome, SCHEDULE_INSTR};
use crate::queries::SortedQueries;
use crate::segments::DeviceSegments;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tdts_geom::{dedup_matches, MatchRecord};
use tdts_gpu_sim::{
    Device, DeviceBuffer, Lane, NextBatch, RedoSchedule, SearchError, SearchReport, Tile, Warp,
    WarpStash, MAX_WARP_LANES,
};

/// What the methods share besides the skeleton: the device-resident entry
/// database, the device-resident query set, and the distance threshold.
pub trait KernelContext: Sync {
    /// The entry database `D` on the device.
    fn entries(&self) -> &DeviceSegments;

    /// The query set `Q` on the device.
    fn queries(&self) -> &DeviceSegments;

    /// The distance threshold `d`.
    fn distance(&self) -> f64;
}

/// Work one lane reports back to the shared thread-per-query skeleton.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneWork {
    /// Refinement comparisons performed (the report's `comparisons`).
    pub compared: u64,
    /// Bytes of candidate-buffer writes to flush as coalesced traffic in
    /// the warp epilogue (only `GPUSpatial`'s `U_k` gather uses this).
    pub scratch_bytes: u64,
}

/// A method's thread-per-query candidate generation, plugged into
/// [`run_thread_per_query`].
pub trait CandidateGenerator: KernelContext {
    /// Per-round device state (e.g. the spatial candidate scratch, sized by
    /// the live batch); `()` when a method needs none.
    type Round: Sync;

    /// Allocate per-round state before each launch over `batch_len` queries.
    fn begin_round(&self, batch_len: usize) -> Result<Self::Round, SearchError>;

    /// Threads to launch in the first round (defaults to one per query;
    /// GPUSpatioTemporal launches one per padded execution-order slot).
    fn first_round_threads(&self, n_queries: usize) -> usize {
        n_queries
    }

    /// Fetch the lane's execution slot in the first round (redo rounds read
    /// from the uploaded redo-id buffer instead).
    fn first_round_slot(&self, lane: &mut Lane) -> u32 {
        lane.global_id as u32
    }

    /// Decode a slot into a query id, or `None` for a padding lane that
    /// retires immediately (after taking its group's control path).
    fn decode_slot(&self, _lane: &mut Lane, slot: u32) -> Option<u32> {
        Some(slot)
    }

    /// Generate and refine the candidates of query `qid`, staging matches
    /// into the warp stash. Overflow handling is the skeleton's job: stop
    /// early (or mark the lane dropped) and the query is redone.
    fn run_query(
        &self,
        lane: &mut Lane,
        qid: u32,
        stash: &mut WarpStash<'_, MatchRecord>,
        round: &Self::Round,
    ) -> LaneWork;

    /// Warp epilogue hook, run after the lanes and *before* the stash
    /// commit. `GPUSpatial` flushes its staged candidate-buffer bytes here.
    fn end_warp(&self, _warp: &mut Warp, _round: &Self::Round, _scratch_bytes: u64) {}

    /// The error when a single query cannot complete even alone in a batch.
    fn stuck_error(&self, _round: &Self::Round, result_capacity: usize) -> SearchError {
        SearchError::ResultCapacityTooSmall { capacity: result_capacity }
    }
}

/// A method's warp-per-tile candidate decomposition, plugged into
/// [`run_warp_per_tile`].
pub trait TileGenerator: KernelContext {
    /// Append the tiles of query `qid` (its candidate ranges cut to at most
    /// `tile_size` entries, tagged as the method requires).
    fn push_tiles(&self, tiles: &mut Vec<Tile>, qid: u32, tile_size: usize);

    /// Per-tile setup instruction charge (broadcast decode, MBB setup, …),
    /// converged at warp scope.
    fn tile_setup_instr(&self) -> u64 {
        SCHEDULE_INSTR
    }

    /// Resolve tile position `i` to an entry position (identity for direct
    /// ranges; a charged indirection for lookup-array methods).
    fn tile_entry_pos(&self, _lane: &mut Lane, _tile: &Tile, i: usize) -> u32 {
        i as u32
    }
}

/// Run the thread-per-query protocol to completion. Returns the raw
/// (sorted-position, undeduplicated) matches and the comparison count;
/// callers hand both to [`finish_search`].
pub fn run_thread_per_query<G: CandidateGenerator>(
    device: &Arc<Device>,
    generator: &G,
    n_queries: usize,
    result_capacity: usize,
    report: &mut SearchReport,
) -> Result<(Vec<MatchRecord>, u64), SearchError> {
    let mut results = device.alloc_result::<MatchRecord>(result_capacity)?;
    let mut redo = device.alloc_result::<u32>(n_queries)?;

    let mut matches: Vec<MatchRecord> = Vec::new();
    let mut batch: Option<DeviceBuffer<u32>> = None; // None = all queries
    let mut batch_len = n_queries;
    let mut launch_threads = generator.first_round_threads(n_queries);
    let mut redo_schedule = RedoSchedule::new();
    let comparisons = AtomicU64::new(0);

    loop {
        let round = generator.begin_round(batch_len)?;
        let launch = device.launch_warps(launch_threads, |warp| {
            let mut stash = results.warp_stash();
            let mut qids = [0u32; MAX_WARP_LANES];
            let mut scratch_bytes = 0u64;
            warp.for_each_lane(|lane| {
                let slot = match &batch {
                    None => generator.first_round_slot(lane),
                    Some(ids) => ids.read(lane, lane.global_id),
                };
                let Some(qid) = generator.decode_slot(lane, slot) else {
                    return;
                };
                qids[lane.lane_index()] = qid;
                let work = generator.run_query(lane, qid, &mut stash, &round);
                scratch_bytes += work.scratch_bytes;
                comparisons.fetch_add(work.compared, Ordering::Relaxed);
            });
            // Warp epilogue: method hook (scratch flush), then one cursor
            // bump for the warp's matches, then stage redo ids for lanes
            // that lost records.
            generator.end_warp(warp, &round, scratch_bytes);
            let dropped = stash.commit(warp);
            if dropped != 0 {
                let mut redo_stash = redo.warp_stash();
                for (li, &qid) in qids.iter().enumerate().take(warp.lane_count()) {
                    if dropped & (1 << li) != 0 {
                        redo_stash.stage_at(li, qid);
                    }
                }
                redo_stash.commit(warp);
            }
        });
        report.divergent_warps += launch.divergent_warps as u64;
        report.totals.add(&launch.totals);
        report.load.add_launch(&launch);

        let produced = results.len();
        device.charge_download(produced * std::mem::size_of::<MatchRecord>());
        matches.extend(results.drain_to_host());
        let redo_ids = redo.drain_to_host();
        device.charge_download(redo_ids.len() * std::mem::size_of::<u32>());

        match redo_schedule.next(redo_ids, batch_len) {
            NextBatch::Done => break,
            NextBatch::Stuck => return Err(generator.stuck_error(&round, result_capacity)),
            NextBatch::Ids(ids) => {
                report.redo_rounds += 1;
                batch_len = ids.len();
                launch_threads = ids.len();
                batch = Some(device.upload(ids)?);
            }
        }
    }
    Ok((matches, comparisons.into_inner()))
}

/// Run the warp-per-tile protocol to completion. Tile decomposition runs on
/// the host once per round (charged); each warp reads its tile's query once
/// through the leader and broadcasts it. Returns the raw matches and the
/// comparison count for [`finish_search`].
pub fn run_warp_per_tile<G: TileGenerator>(
    device: &Arc<Device>,
    generator: &G,
    n_queries: usize,
    result_capacity: usize,
    report: &mut SearchReport,
) -> Result<(Vec<MatchRecord>, u64), SearchError> {
    let tile_size = device.config().tile_size;
    let warp_size = device.config().warp_size;

    let build_tiles = |ids: Option<&[u32]>| -> Vec<Tile> {
        let host_start = Instant::now();
        let mut tiles = Vec::new();
        let mut push = |qid: u32| generator.push_tiles(&mut tiles, qid, tile_size);
        match ids {
            None => (0..n_queries as u32).for_each(&mut push),
            Some(ids) => ids.iter().copied().for_each(&mut push),
        }
        device.charge_host(host_start.elapsed().as_secs_f64());
        tiles
    };

    let mut tiles = build_tiles(None);
    let mut results = device.alloc_result::<MatchRecord>(result_capacity)?;
    // Each tile stages at most one redo id (its query); the first round has
    // the most tiles, later rounds cover subsets of its queries.
    let mut redo = device.alloc_result::<u32>(tiles.len().max(1))?;

    let mut matches: Vec<MatchRecord> = Vec::new();
    let mut batch_len = n_queries;
    let mut redo_schedule = RedoSchedule::new();
    let comparisons = AtomicU64::new(0);

    loop {
        let queue = device.work_queue(std::mem::take(&mut tiles))?;
        let launch = device.launch_persistent(&queue, |warp, tile| {
            let mut stash = results.warp_stash();
            // The warp leader reads the tile's query once and broadcasts it
            // (__shfl_sync analogue): converged charges, one row in the
            // buffer's layout.
            let q = generator.queries().broadcast(warp, tile.query as usize);
            warp.instr(generator.tile_setup_instr());
            warp.for_each_lane(|lane| {
                let mut compared = 0u64;
                let mut i = tile.lo as usize + lane.lane_index();
                while i < tile.hi as usize {
                    let entry_pos = generator.tile_entry_pos(lane, &tile, i);
                    compared += 1;
                    if compare_and_stage(
                        lane,
                        generator.entries(),
                        entry_pos,
                        &q,
                        tile.query,
                        generator.distance(),
                        &mut stash,
                    ) == PushOutcome::Overflow
                    {
                        break;
                    }
                    i += warp_size;
                }
                comparisons.fetch_add(compared, Ordering::Relaxed);
            });
            let dropped = stash.commit(warp);
            if dropped != 0 {
                // Any lost record re-queues the whole query.
                let mut redo_stash = redo.warp_stash();
                redo_stash.stage_at(0, tile.query);
                redo_stash.commit(warp);
            }
        });
        report.divergent_warps += launch.divergent_warps as u64;
        report.totals.add(&launch.totals);
        report.load.add_launch(&launch);

        let produced = results.len();
        device.charge_download(produced * std::mem::size_of::<MatchRecord>());
        matches.extend(results.drain_to_host());
        let mut redo_ids = redo.drain_to_host();
        device.charge_download(redo_ids.len() * std::mem::size_of::<u32>());
        // Several tiles of one query may each report the overflow.
        redo_ids.sort_unstable();
        redo_ids.dedup();

        match redo_schedule.next(redo_ids, batch_len) {
            NextBatch::Done => break,
            NextBatch::Stuck => {
                return Err(SearchError::ResultCapacityTooSmall { capacity: result_capacity })
            }
            NextBatch::Ids(ids) => {
                report.redo_rounds += 1;
                batch_len = ids.len();
                tiles = build_tiles(Some(&ids));
            }
        }
    }
    Ok((matches, comparisons.into_inner()))
}

/// Host postprocessing shared by every driver: map sorted query positions
/// back to the caller's ordering (when the method sorted `Q`), collapse
/// duplicates, and seal the report from the device ledger.
pub fn finish_search(
    device: &Device,
    mut matches: Vec<MatchRecord>,
    sorted: Option<&SortedQueries>,
    comparisons: u64,
    mut report: SearchReport,
    wall_start: Instant,
) -> (Vec<MatchRecord>, SearchReport) {
    let host_start = Instant::now();
    report.raw_matches = matches.len() as u64;
    if let Some(sorted) = sorted {
        sorted.unpermute(&mut matches);
    }
    dedup_matches(&mut matches);
    device.charge_host(host_start.elapsed().as_secs_f64());

    report.comparisons = comparisons;
    report.matches = matches.len() as u64;
    report.response = device.ledger();
    report.wall_seconds = wall_start.elapsed().as_secs_f64();
    report.sanitizer_findings = device.sanitizer_checkpoint();
    (matches, report)
}
