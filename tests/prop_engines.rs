//! Property test: on arbitrary segment databases and query sets, every
//! implementation agrees with the brute-force oracle for any index
//! parameters and any (sufficient) buffer sizes.

use proptest::prelude::*;
use std::sync::Arc;
use tdts::prelude::*;

fn arb_store(max_trajs: usize, max_segs_per: usize) -> impl Strategy<Value = SegmentStore> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (-30.0f64..30.0, -30.0f64..30.0, -30.0f64..30.0),
                2..=max_segs_per + 1,
            ),
            0.0f64..8.0,
        ),
        1..=max_trajs,
    )
    .prop_map(|trajs| {
        let mut store = SegmentStore::new();
        let mut seg = 0u32;
        for (ti, (points, t0)) in trajs.into_iter().enumerate() {
            for (i, w) in points.windows(2).enumerate() {
                store.push(Segment::new(
                    Point3::new(w[0].0, w[0].1, w[0].2),
                    Point3::new(w[1].0, w[1].1, w[1].2),
                    t0 + i as f64,
                    t0 + i as f64 + 1.0,
                    SegId(seg),
                    TrajId(ti as u32),
                ));
                seg += 1;
            }
        }
        store
    })
}

fn device() -> Arc<Device> {
    Device::new(DeviceConfig::tesla_c2075()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_match_oracle(
        store in arb_store(6, 5),
        queries in arb_store(3, 4),
        d in 0.5f64..40.0,
        bins in 1usize..20,
        subbins in 1usize..6,
        cells in 1usize..12,
        r in 1usize..5,
    ) {
        let dataset = PreparedDataset::new(store);
        let expect = brute_force_search(dataset.store(), &queries, d);
        let methods = [
            Method::CpuRTree(RTreeConfig { segments_per_mbb: r, node_capacity: 4 }),
            Method::GpuSpatial(GpuSpatialConfig {
                fsg: FsgConfig { cells_per_dim: cells },
                total_scratch: 200_000,
                compaction_threshold: 4_096,
            }),
            Method::GpuTemporal(TemporalIndexConfig { bins }),
            Method::GpuSpatioTemporal(SpatioTemporalIndexConfig { bins, subbins, sort_by_selector: true }),
        ];
        for method in methods {
            let engine = SearchEngine::build(&dataset, method, device()).unwrap();
            let (got, _) = engine.search(&queries, d, 500_000).unwrap();
            prop_assert!(
                tdts::geom::diff_matches(&got, &expect, 1e-9).is_none(),
                "{} differs from oracle (d = {d}, bins = {bins}, v = {subbins}, cells = {cells})",
                method.name()
            );
        }
    }

    /// Result sets are insensitive to result-buffer capacity as long as the
    /// search completes (the redo protocol is transparent).
    #[test]
    fn capacity_transparency(
        store in arb_store(5, 4),
        queries in arb_store(2, 3),
        d in 1.0f64..30.0,
        capacity in 4usize..64,
    ) {
        let dataset = PreparedDataset::new(store);
        let engine = SearchEngine::build(
            &dataset,
            Method::GpuTemporal(TemporalIndexConfig { bins: 8 }),
            device(),
        )
        .unwrap();
        let (big, _) = engine.search(&queries, d, 500_000).unwrap();
        let (small, _) = engine.search(&queries, d, capacity).unwrap();
        prop_assert_eq!(big, small);
    }
}
