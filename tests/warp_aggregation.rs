//! Tier-1: warp-aggregated result writes are transparent — every GPU method
//! returns the brute-force oracle's result set in both write modes — while
//! cutting the launch's global atomics by at least 8x on a fixed Random
//! dataset (the headline of the result-write ablation).

use std::sync::Arc;
use tdts::prelude::*;

fn device(mode: ResultWriteMode) -> Arc<Device> {
    let mut c = DeviceConfig::tesla_c2075();
    c.result_write_mode = mode;
    Device::new(c).unwrap()
}

fn gpu_methods() -> Vec<Method> {
    vec![
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 10 },
            total_scratch: 500_000,
            compaction_threshold: 4_096,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins: 50 }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins: 50,
            subbins: 4,
            sort_by_selector: true,
        }),
    ]
}

#[test]
fn warp_aggregation_matches_oracle_and_cuts_atomics() {
    let store =
        RandomWalkConfig { trajectories: 40, timesteps: 30, ..Default::default() }.generate();
    // Use case (ii): query the database with its own first trajectories —
    // dense enough that every warp commits matches.
    let queries: SegmentStore = store.iter().filter(|s| s.traj_id.0 < 10).copied().collect();
    let dataset = PreparedDataset::new(store);
    let d = 25.0;
    let expect = brute_force_search(dataset.store(), &queries, d);
    assert!(!expect.is_empty(), "the fixture must produce matches");

    for method in gpu_methods() {
        let mut results = Vec::new();
        let mut atomics = Vec::new();
        for mode in [ResultWriteMode::PerLane, ResultWriteMode::WarpAggregated] {
            let engine = SearchEngine::build(&dataset, method, device(mode)).expect("build");
            let (got, report) = engine.search(&queries, d, 2_000_000).expect("search");
            assert!(
                tdts::geom::diff_matches(&got, &expect, 1e-9).is_none(),
                "{} in {mode:?} mode differs from the oracle",
                method.name()
            );
            results.push(got);
            atomics.push(report.totals.atomics);
        }
        // Identical arithmetic on both paths: the deduplicated result sets
        // are byte-identical, not merely equivalent.
        assert_eq!(results[0], results[1], "{}: write mode changed results", method.name());

        let (per_lane, warp_agg) = (atomics[0], atomics[1]);
        assert!(
            warp_agg * 8 <= per_lane,
            "{}: expected >= 8x atomics reduction, got {per_lane} -> {warp_agg}",
            method.name()
        );
    }
}
