//! Integration: all four implementations must return identical result sets,
//! equal to the brute-force oracle, on every dataset generator.

use std::sync::Arc;
use tdts::prelude::*;

fn device() -> Arc<Device> {
    Device::new(DeviceConfig::tesla_c2075()).unwrap()
}

fn methods(bins: usize, subbins: usize, cells: usize) -> Vec<Method> {
    vec![
        Method::CpuRTree(RTreeConfig::default()),
        Method::CpuRTree(RTreeConfig { segments_per_mbb: 1, node_capacity: 4 }),
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: cells },
            total_scratch: 500_000,
            compaction_threshold: 4_096,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins,
            subbins,
            sort_by_selector: true,
        }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins,
            subbins: 1,
            sort_by_selector: true,
        }),
    ]
}

fn check_all(store: SegmentStore, queries: SegmentStore, distances: &[f64], label: &str) {
    let dataset = PreparedDataset::new(store);
    let engines: Vec<SearchEngine> = methods(50, 4, 10)
        .into_iter()
        .map(|m| SearchEngine::build(&dataset, m, device()).expect("build"))
        .collect();
    for &d in distances {
        let expect = brute_force_search(dataset.store(), &queries, d);
        for engine in &engines {
            let (got, report) = engine.search(&queries, d, 2_000_000).expect("search");
            assert_eq!(
                got.len(),
                expect.len(),
                "{label}: {} at d = {d}: {} vs oracle {}",
                engine.method().name(),
                got.len(),
                expect.len()
            );
            assert!(
                tdts::geom::diff_matches(&got, &expect, 1e-9).is_none(),
                "{label}: {} differs from oracle at d = {d}",
                engine.method().name()
            );
            assert_eq!(report.matches as usize, got.len());
        }
    }
}

#[test]
fn random_walk_dataset() {
    let store =
        RandomWalkConfig { trajectories: 40, timesteps: 30, ..Default::default() }.generate();
    let queries =
        RandomWalkConfig { trajectories: 10, timesteps: 30, seed: 999, ..Default::default() }
            .generate();
    check_all(store, queries, &[1.0, 20.0, 100.0], "random");
}

#[test]
fn merger_dataset() {
    let store = MergerConfig { particles: 60, timesteps: 25, ..Default::default() }.generate();
    let queries =
        MergerConfig { particles: 12, timesteps: 25, seed: 77, ..Default::default() }.generate();
    check_all(store, queries, &[0.5, 3.0, 15.0], "merger");
}

#[test]
fn random_dense_dataset() {
    let store = RandomDenseConfig { particles: 64, timesteps: 20, ..Default::default() }.generate();
    let queries =
        RandomDenseConfig { particles: 12, timesteps: 20, seed: 55, ..Default::default() }
            .generate();
    check_all(store, queries, &[1.0, 10.0, 40.0], "dense");
}

#[test]
fn queries_from_dataset_itself() {
    // Use case (ii): query the database with its own trajectories.
    let store =
        RandomWalkConfig { trajectories: 30, timesteps: 20, ..Default::default() }.generate();
    let queries: SegmentStore = store.iter().filter(|s| s.traj_id.0 < 5).copied().collect();
    check_all(store, queries, &[5.0, 50.0], "self-query");
}

#[test]
fn degenerate_single_trajectory() {
    let store =
        RandomWalkConfig { trajectories: 1, timesteps: 10, ..Default::default() }.generate();
    let queries = store.clone();
    check_all(store, queries, &[0.1, 10.0], "single-trajectory");
}
