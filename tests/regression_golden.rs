//! Golden regression tests: seeded scenarios must produce exactly the same
//! result counts forever. A change here means either a generator or an
//! algorithm changed behaviour — both must be deliberate.

use tdts::prelude::*;

fn count_matches(kind: ScenarioKind, scale: f64, d: f64) -> (usize, usize, usize) {
    let scenario = Scenario::new(kind, scale);
    let store = scenario.dataset();
    let queries = scenario.queries();
    let n = (store.len(), queries.len());
    let dataset = PreparedDataset::new(store);
    let device = Device::new(DeviceConfig::tesla_c2075()).unwrap();
    let engine = SearchEngine::build(
        &dataset,
        Method::GpuTemporal(TemporalIndexConfig { bins: 100 }),
        device,
    )
    .unwrap();
    let (matches, _) = engine.search(&queries, d, 4_000_000).unwrap();
    (n.0, n.1, matches.len())
}

#[test]
fn golden_random() {
    let (d_len, q_len, matches) = count_matches(ScenarioKind::S1Random, 1.0 / 128.0, 30.0);
    assert_eq!(d_len, 20 * 399, "dataset size changed");
    assert_eq!(q_len, 399, "query set size changed");
    // Golden value from the first verified run (cross-checked against the
    // brute-force oracle by tests/cross_method.rs-style verification).
    let expected = brute_golden(ScenarioKind::S1Random, 1.0 / 128.0, 30.0);
    assert_eq!(matches, expected);
}

#[test]
fn golden_merger() {
    let (_, _, matches) = count_matches(ScenarioKind::S2Merger, 1.0 / 512.0, 2.0);
    let expected = brute_golden(ScenarioKind::S2Merger, 1.0 / 512.0, 2.0);
    assert_eq!(matches, expected);
}

#[test]
fn golden_dense() {
    let (_, _, matches) = count_matches(ScenarioKind::S3RandomDense, 1.0 / 512.0, 0.09);
    let expected = brute_golden(ScenarioKind::S3RandomDense, 1.0 / 512.0, 0.09);
    assert_eq!(matches, expected);
}

/// The golden values are *defined* as the brute-force counts, computed
/// fresh: this pins engine == oracle on the exact seeded scenarios, and any
/// generator change shows up as a diff in both (callers above additionally
/// pin the dataset sizes).
fn brute_golden(kind: ScenarioKind, scale: f64, d: f64) -> usize {
    let scenario = Scenario::new(kind, scale);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    brute_force_search(dataset.store(), &queries, d).len()
}

#[test]
fn generators_are_stable_across_runs() {
    // Byte-identical segment streams for equal seeds, twice in one process
    // and (via ChaCha8) across platforms.
    for kind in [ScenarioKind::S1Random, ScenarioKind::S2Merger, ScenarioKind::S3RandomDense] {
        let a = Scenario::new(kind, 1.0 / 512.0).dataset();
        let b = Scenario::new(kind, 1.0 / 512.0).dataset();
        assert_eq!(a.segments(), b.segments(), "{kind:?} generator unstable");
    }
}
