//! Integration: qualitative behaviours the paper reports must hold on
//! scaled-down versions of its scenarios.
//!
//! The Merger dataset is used for the spatial-selectivity behaviours: its
//! clustered, scale-free geometry survives down-scaling, whereas the two
//! random-walk datasets become degenerate at very small scales (too sparse
//! for any spatial interaction, or with segments rivalling the whole cube,
//! which caps the subbin count via the §IV-C1 constraint).

use std::sync::Arc;
use tdts::prelude::*;

fn device() -> Arc<Device> {
    Device::new(DeviceConfig::tesla_c2075()).unwrap()
}

const SCALE: f64 = 1.0 / 256.0;

#[test]
fn gputemporal_response_flat_in_d() {
    // §V-C: "GPUTemporal's response time does not depend on d".
    let scenario = Scenario::new(ScenarioKind::S1Random, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    let engine = SearchEngine::build(
        &dataset,
        Method::GpuTemporal(TemporalIndexConfig { bins: 200 }),
        device(),
    )
    .unwrap();
    let mut comparisons = Vec::new();
    for d in [1.0, 10.0, 50.0] {
        let (_, report) = engine.search(&queries, d, 2_000_000).unwrap();
        comparisons.push(report.comparisons);
    }
    assert!(
        comparisons.windows(2).all(|w| w[0] == w[1]),
        "comparisons varied with d: {comparisons:?}"
    );
}

#[test]
fn gpuspatial_comparisons_grow_with_d() {
    // §V-C: GPUSpatial "does not scale well as d increases".
    let scenario = Scenario::new(ScenarioKind::S2Merger, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    let engine = SearchEngine::build(
        &dataset,
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 20 },
            total_scratch: 8_000_000,
            compaction_threshold: 4_096,
        }),
        device(),
    )
    .unwrap();
    let (_, small) = engine.search(&queries, 0.1, 2_000_000).unwrap();
    let (_, large) = engine.search(&queries, 5.0, 2_000_000).unwrap();
    assert!(
        large.comparisons > small.comparisons * 3,
        "expected strong growth: {} vs {}",
        small.comparisons,
        large.comparisons
    );
    assert!(large.response_seconds() > small.response_seconds());
}

#[test]
fn spatiotemporal_more_selective_than_temporal_at_small_d() {
    // §IV-C: the subbins add spatial selectivity, so at small d the
    // spatiotemporal scheme compares far fewer candidates.
    let scenario = Scenario::new(ScenarioKind::S2Merger, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    let bins = 100;
    let temporal =
        SearchEngine::build(&dataset, Method::GpuTemporal(TemporalIndexConfig { bins }), device())
            .unwrap();
    let st = SearchEngine::build(
        &dataset,
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins,
            subbins: 8,
            sort_by_selector: true,
        }),
        device(),
    )
    .unwrap();
    let d = 0.1;
    let (mt, rt) = temporal.search(&queries, d, 2_000_000).unwrap();
    let (ms, rs) = st.search(&queries, d, 2_000_000).unwrap();
    assert_eq!(mt, ms);
    assert!(
        rs.comparisons * 2 < rt.comparisons,
        "spatiotemporal {} vs temporal {}",
        rs.comparisons,
        rt.comparisons
    );
    assert!(rs.response_seconds() < rt.response_seconds());
}

#[test]
fn fallback_rate_grows_with_d() {
    // §V-E: larger d makes queries overlap multiple subbins in every
    // dimension and fall back to the temporal scheme.
    let scenario = Scenario::new(ScenarioKind::S2Merger, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    let engine = SearchEngine::build(
        &dataset,
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins: 100,
            subbins: 8,
            sort_by_selector: true,
        }),
        device(),
    )
    .unwrap();
    let mut rates = Vec::new();
    for d in [0.01, 2.0, 50.0] {
        let (_, report) = engine.search(&queries, d, 2_000_000).unwrap();
        rates.push(report.fallback_queries);
    }
    assert!(rates[0] <= rates[1] && rates[1] <= rates[2], "rates {rates:?}");
    assert!(rates[2] > rates[0], "fallback must grow: {rates:?}");
}

#[test]
fn subbin_count_capped_by_extent_constraint() {
    // §IV-C1: v may not exceed extent / max segment extent.
    let scenario = Scenario::new(ScenarioKind::S1Random, SCALE);
    let store = {
        let mut s = scenario.dataset();
        s.sort_by_t_start();
        s
    };
    let idx = tdts::index_spatiotemporal::SpatioTemporalIndex::build(
        &store,
        SpatioTemporalIndexConfig { bins: 50, subbins: 1_000_000, sort_by_selector: true },
    )
    .unwrap();
    let stats = store.stats().unwrap();
    for d in 0..3 {
        let extent = stats.bounds.hi.coord(d) - stats.bounds.lo.coord(d);
        let max_ext = stats.max_segment_extent[d];
        assert!(
            idx.effective_subbins() as f64 <= extent / max_ext,
            "constraint violated in dim {d}"
        );
    }
}

#[test]
fn dense_dataset_scaling_caps_subbins() {
    // At reduced scale the dense cube shrinks (density is preserved) while
    // segment extents do not, so the §IV-C1 constraint caps v — documented
    // behaviour that the T-F harness notes.
    let scenario = Scenario::new(ScenarioKind::S3RandomDense, SCALE);
    let store = {
        let mut s = scenario.dataset();
        s.sort_by_t_start();
        s
    };
    let idx = tdts::index_spatiotemporal::SpatioTemporalIndex::build(
        &store,
        SpatioTemporalIndexConfig { bins: 50, subbins: 16, sort_by_selector: true },
    )
    .unwrap();
    assert!(idx.effective_subbins() < 16);
}
