//! Tier-1: warp-per-tile kernels are transparent — every GPU method
//! returns the brute-force oracle's result set in both kernel shapes, with
//! byte-identical canonical results — while cutting the max/mean warp-cost
//! spread on a skewed schedule (the headline of the work-queue ablation).

use proptest::prelude::*;
use std::sync::Arc;
use tdts::prelude::*;

fn device(shape: KernelShape) -> Arc<Device> {
    let mut c = DeviceConfig::tesla_c2075();
    c.kernel_shape = shape;
    Device::new(c).unwrap()
}

fn gpu_methods() -> Vec<Method> {
    vec![
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 10 },
            total_scratch: 500_000,
            compaction_threshold: 4_096,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins: 50 }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins: 50,
            subbins: 4,
            sort_by_selector: true,
        }),
    ]
}

#[test]
fn both_shapes_match_oracle_with_identical_results() {
    let store =
        RandomWalkConfig { trajectories: 40, timesteps: 30, ..Default::default() }.generate();
    let queries: SegmentStore = store.iter().filter(|s| s.traj_id.0 < 10).copied().collect();
    let dataset = PreparedDataset::new(store);
    let d = 25.0;
    let expect = brute_force_search(dataset.store(), &queries, d);
    assert!(!expect.is_empty(), "the fixture must produce matches");

    for method in gpu_methods() {
        let mut results = Vec::new();
        for shape in [KernelShape::ThreadPerQuery, KernelShape::WarpPerTile] {
            let engine = SearchEngine::build(&dataset, method, device(shape)).expect("build");
            let (got, report) = engine.search(&queries, d, 2_000_000).expect("search");
            assert!(
                tdts::geom::diff_matches(&got, &expect, 1e-9).is_none(),
                "{} in {shape:?} differs from the oracle",
                method.name()
            );
            match shape {
                KernelShape::ThreadPerQuery => assert_eq!(report.load.tiles_dispatched, 0),
                KernelShape::WarpPerTile => {
                    assert!(report.load.tiles_dispatched > 0);
                    assert!(report.load.queue_atomics > report.load.tiles_dispatched);
                }
            }
            results.push(got);
        }
        // Identical arithmetic on both shapes: the deduplicated result sets
        // are byte-identical, not merely equivalent.
        assert_eq!(results[0], results[1], "{}: kernel shape changed results", method.name());
    }
}

#[test]
fn work_queue_cuts_spread_on_skewed_schedule() {
    // A Merger skew: most query segments sit in sparse regions while a few
    // overlap the dense core, so the spatially-selective candidate ranges
    // span orders of magnitude and the static one-thread-per-query warps
    // cost as much as their heaviest lane. (The purely temporal index is
    // immune — every particle exists at every timestep, so its ranges are
    // near-uniform — which is why the fixture indexes space.)
    let store = MergerConfig { particles: 240, timesteps: 25, ..Default::default() }.generate();
    let queries: SegmentStore = store.iter().step_by(7).copied().collect();
    let dataset = PreparedDataset::new(store);
    let d = 0.5;

    let method = Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
        bins: 50,
        subbins: 8,
        sort_by_selector: true,
    });
    let run = |shape: KernelShape| {
        let engine = SearchEngine::build(&dataset, method, device(shape)).expect("build");
        engine.search(&queries, d, 2_000_000).expect("search")
    };
    let (tpq_matches, tpq) = run(KernelShape::ThreadPerQuery);
    let (wpt_matches, wpt) = run(KernelShape::WarpPerTile);

    assert_eq!(tpq_matches, wpt_matches);
    assert!(
        wpt.load.spread() * 2.0 <= tpq.load.spread(),
        "expected >= 2x spread cut: ThreadPerQuery {:.2}, WarpPerTile {:.2}",
        tpq.load.spread(),
        wpt.load.spread()
    );
    assert!(
        wpt.response_seconds() < tpq.response_seconds(),
        "expected a response-time win: ThreadPerQuery {:.6}s, WarpPerTile {:.6}s",
        tpq.response_seconds(),
        wpt.response_seconds()
    );
}

fn arb_store(max_trajs: usize, max_segs_per: usize) -> impl Strategy<Value = SegmentStore> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (-30.0f64..30.0, -30.0f64..30.0, -30.0f64..30.0),
                2..=max_segs_per + 1,
            ),
            0.0f64..8.0,
        ),
        1..=max_trajs,
    )
    .prop_map(|trajs| {
        let mut store = SegmentStore::new();
        let mut seg = 0u32;
        for (ti, (points, t0)) in trajs.into_iter().enumerate() {
            for (i, w) in points.windows(2).enumerate() {
                store.push(Segment::new(
                    Point3::new(w[0].0, w[0].1, w[0].2),
                    Point3::new(w[1].0, w[1].1, w[1].2),
                    t0 + i as f64,
                    t0 + i as f64 + 1.0,
                    SegId(seg),
                    TrajId(ti as u32),
                ));
                seg += 1;
            }
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The kernel shape is a pure execution strategy: on arbitrary inputs,
    /// index parameters, and tile sizes, warp-per-tile returns exactly the
    /// thread-per-query result set for every GPU method.
    #[test]
    fn kernel_shapes_are_equivalent(
        store in arb_store(6, 5),
        queries in arb_store(3, 4),
        d in 0.5f64..40.0,
        bins in 1usize..20,
        subbins in 1usize..6,
        cells in 1usize..12,
        tile_size in 1usize..300,
        capacity in 32usize..500_000,
    ) {
        let dataset = PreparedDataset::new(store);
        let methods = [
            Method::GpuSpatial(GpuSpatialConfig {
                fsg: FsgConfig { cells_per_dim: cells },
                total_scratch: 200_000,
                compaction_threshold: 4_096,
            }),
            Method::GpuTemporal(TemporalIndexConfig { bins }),
            Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
                bins,
                subbins,
                sort_by_selector: true,
            }),
        ];
        for method in methods {
            let run = |shape: KernelShape| {
                let mut c = DeviceConfig::tesla_c2075();
                c.kernel_shape = shape;
                c.tile_size = tile_size;
                let engine =
                    SearchEngine::build(&dataset, method, Device::new(c).unwrap()).unwrap();
                engine.search(&queries, d, capacity)
            };
            // Tiny capacities may legitimately fail with
            // ResultCapacityTooSmall; shapes must then fail identically or
            // return identical results.
            match (run(KernelShape::ThreadPerQuery), run(KernelShape::WarpPerTile)) {
                (Ok((tpq, _)), Ok((wpt, _))) => prop_assert_eq!(
                    tpq, wpt, "{} results differ across kernel shapes", method.name()
                ),
                (Err(_), Err(_)) => {}
                (tpq, wpt) => prop_assert!(
                    false,
                    "{}: one shape failed: tpq ok = {}, wpt ok = {}",
                    method.name(),
                    tpq.is_ok(),
                    wpt.is_ok()
                ),
            }
        }
    }
}
