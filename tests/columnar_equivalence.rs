//! Tier-1: the columnar device layout is an accounting change only.
//!
//! All five methods must return *byte-identical* result sets (exact
//! `MatchRecord` equality, not tolerance-based diffing) on the Merger and
//! Random-dense scenario generators, and each GPU method must return the
//! same records and perform the same number of comparisons under the AoS
//! and Columnar layouts — only the memory-traffic counters may move.

use std::sync::Arc;
use tdts::prelude::*;

fn methods() -> Vec<Method> {
    vec![
        Method::CpuRTree(RTreeConfig::default()),
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 10 },
            total_scratch: 500_000,
            compaction_threshold: 4_096,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins: 40 }),
        Method::GpuBatchedTemporal(BatchedConfig {
            index: TemporalIndexConfig { bins: 40 },
            batch_size: 9,
        }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins: 40,
            subbins: 4,
            sort_by_selector: true,
        }),
    ]
}

fn device(layout: SegmentLayout) -> Arc<Device> {
    let mut config = DeviceConfig::tesla_c2075();
    config.segment_layout = layout;
    Device::new(config).unwrap()
}

/// Exact equality — every field of every record, bit for bit.
fn assert_byte_identical(got: &[MatchRecord], expect: &[MatchRecord], label: &str) {
    assert_eq!(got.len(), expect.len(), "{label}: result count");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(g.query, e.query, "{label}: record {i} query");
        assert_eq!(g.entry, e.entry, "{label}: record {i} entry");
        assert_eq!(
            g.interval.start.to_bits(),
            e.interval.start.to_bits(),
            "{label}: record {i} interval start"
        );
        assert_eq!(
            g.interval.end.to_bits(),
            e.interval.end.to_bits(),
            "{label}: record {i} interval end"
        );
    }
}

fn check_scenario(store: SegmentStore, queries: SegmentStore, distances: &[f64], label: &str) {
    let dataset = PreparedDataset::new(store);
    for &d in distances {
        let mut reference: Option<Vec<MatchRecord>> = None;
        for method in methods() {
            // Cross-layout identity per method: same records, same number
            // of comparisons; only memory traffic may differ.
            let aos_engine =
                SearchEngine::build(&dataset, method, device(SegmentLayout::Aos)).unwrap();
            let col_engine =
                SearchEngine::build(&dataset, method, device(SegmentLayout::Columnar)).unwrap();
            let (aos, aos_report) = aos_engine.search(&queries, d, 2_000_000).unwrap();
            let (col, col_report) = col_engine.search(&queries, d, 2_000_000).unwrap();
            let name = method.name();
            assert_byte_identical(&col, &aos, &format!("{label}/{name} layouts d={d}"));
            assert_eq!(
                col_report.comparisons, aos_report.comparisons,
                "{label}/{name} d={d}: comparisons must be layout-independent"
            );

            // Cross-method identity at fixed (default) layout.
            match &reference {
                None => reference = Some(col),
                Some(r) => {
                    assert_byte_identical(&col, r, &format!("{label}/{name} vs reference d={d}"))
                }
            }
        }
        assert!(
            reference.as_ref().is_some_and(|r| !r.is_empty()),
            "{label} d={d}: scenario must produce matches for the test to mean anything"
        );
    }
}

#[test]
fn merger_scenario_byte_identical() {
    let store = MergerConfig { particles: 60, timesteps: 25, ..Default::default() }.generate();
    let queries =
        MergerConfig { particles: 12, timesteps: 25, seed: 77, ..Default::default() }.generate();
    check_scenario(store, queries, &[1.0, 4.0], "merger");
}

#[test]
fn random_dense_scenario_byte_identical() {
    let store = RandomDenseConfig { particles: 64, timesteps: 20, ..Default::default() }.generate();
    let queries =
        RandomDenseConfig { particles: 12, timesteps: 20, seed: 55, ..Default::default() }
            .generate();
    check_scenario(store, queries, &[2.0, 12.0], "random-dense");
}
