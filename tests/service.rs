//! End-to-end tests of the concurrent batched query service: coalesced
//! results must be byte-identical to sequential engine calls, failure paths
//! must be typed errors rather than hangs, and degradation must reroute
//! batches to the fallback engine.

use std::thread;
use std::time::Duration;

use tdts::prelude::*;

const D: f64 = 5.0;
const CAPACITY: usize = 30_000;

/// A small galaxy-merger dataset plus client requests drawn from it (each
/// request a handful of consecutive segments, so every request has matches).
fn merger_requests() -> (PreparedDataset, Vec<SegmentStore>) {
    let store = MergerConfig { particles: 24, timesteps: 10, ..Default::default() }.generate();
    let requests: Vec<SegmentStore> =
        store.segments().chunks(4).take(12).map(|chunk| chunk.iter().copied().collect()).collect();
    (PreparedDataset::new(store), requests)
}

fn temporal() -> Method {
    Method::GpuTemporal(TemporalIndexConfig { bins: 8 })
}

#[test]
fn concurrent_clients_match_sequential_engine() {
    let (dataset, requests) = merger_requests();
    let config = ServiceConfig::builder(temporal())
        .device(DeviceConfig::test_tiny())
        .workers(2)
        .max_batch(16)
        .max_delay(Duration::from_millis(1))
        .result_capacity(CAPACITY)
        .build()
        .unwrap();
    let service = QueryService::start(&dataset, config).unwrap();

    // N concurrent clients, one request each.
    let mut concurrent: Vec<Vec<MatchRecord>> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| {
                let service = &service;
                scope.spawn(move || service.submit(request, D).unwrap().matches)
            })
            .collect();
        concurrent = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    service.shutdown();

    // The same requests, one sequential engine call each.
    let device = Device::new(DeviceConfig::test_tiny()).unwrap();
    let engine = SearchEngine::build(&dataset, temporal(), device).unwrap();
    for (i, request) in requests.iter().enumerate() {
        let (expected, _) = engine.search(request, D, CAPACITY).unwrap();
        assert!(!expected.is_empty(), "request {i} should match itself");
        assert_eq!(concurrent[i], expected, "request {i}: coalesced != sequential");
    }

    let stats = service.stats();
    assert_eq!(stats.requests_served, requests.len() as u64);
    // Coalescing must actually have happened: fewer batches than requests.
    assert!(stats.batches_executed < requests.len() as u64);
}

#[test]
fn timeout_and_queue_full_are_typed_errors() {
    let (dataset, requests) = merger_requests();
    // Nothing ever flushes on its own, so admitted requests stay in flight.
    let config = ServiceConfig::builder(temporal())
        .device(DeviceConfig::test_tiny())
        .workers(1)
        .max_batch(1_000_000)
        .max_delay(Duration::from_secs(3600))
        .queue_capacity(2)
        .result_capacity(CAPACITY)
        .build()
        .unwrap();
    let service = QueryService::start(&dataset, config).unwrap();

    // An already-expired deadline resolves as Timeout, not a hang.
    let err = service.submit_with_deadline(&requests[0], D, Duration::ZERO).unwrap_err();
    assert!(matches!(err, TdtsError::Timeout), "got {err:?}");

    // The timed-out request still occupies its admission slot until a worker
    // visits it, so one more request fills the queue and the next bounces.
    let ticket = service.submit_nowait(&requests[1], D, None).unwrap();
    let err = service.submit_nowait(&requests[2], D, None).unwrap_err();
    assert!(matches!(err, TdtsError::Overloaded), "got {err:?}");

    // Shutdown drains the queue; the admitted ticket resolves with results.
    service.shutdown();
    assert!(!ticket.wait().unwrap().matches.is_empty());
    let stats = service.stats();
    assert_eq!(stats.requests_timed_out, 1);
    assert_eq!(stats.requests_rejected, 1);
}

#[test]
fn degradation_reroutes_batches_to_fallback() {
    let (dataset, requests) = merger_requests();
    // A one-entry scratch buffer makes every GPUSpatial batch fail with
    // ScratchCapacityTooSmall; the service must reroute to the fallback.
    let broken_spatial = Method::GpuSpatial(GpuSpatialConfig {
        fsg: FsgConfig::default(),
        total_scratch: 1,
        compaction_threshold: 4_096,
    });
    let config = ServiceConfig::builder(broken_spatial)
        .fallback_method(temporal())
        .device(DeviceConfig::test_tiny())
        .workers(1)
        .max_batch(16)
        .max_delay(Duration::from_millis(1))
        .max_consecutive_failures(1)
        .result_capacity(CAPACITY)
        .build()
        .unwrap();
    let service = QueryService::start(&dataset, config).unwrap();

    let response = service.submit(&requests[0], D).unwrap();
    let second = service.submit(&requests[1], D).unwrap();
    service.shutdown();

    // Results still come back correct, just via the fallback engine.
    let device = Device::new(DeviceConfig::test_tiny()).unwrap();
    let engine = SearchEngine::build(&dataset, temporal(), device).unwrap();
    let (expected, _) = engine.search(&requests[0], D, CAPACITY).unwrap();
    assert_eq!(response.matches, expected);
    assert!(!second.matches.is_empty());

    let stats = service.stats();
    assert!(stats.degraded, "service should be degraded after repeated failures");
    assert!(stats.fallback_batches >= 1);
    assert_eq!(stats.requests_failed, 0);
    assert_eq!(stats.requests_served, 2);
}

#[test]
fn coalescing_flushes_one_batch_at_max_batch_queries() {
    let (dataset, requests) = merger_requests();
    let n = 8;
    let total_queries: usize = requests.iter().take(n).map(|r| r.len()).sum();
    // The flush trigger counts queries: with max_batch equal to the total
    // query count and an effectively infinite delay, exactly one batch runs.
    let config = ServiceConfig::builder(temporal())
        .device(DeviceConfig::test_tiny())
        .workers(1)
        .max_batch(total_queries)
        .max_delay(Duration::from_secs(3600))
        .result_capacity(CAPACITY)
        .build()
        .unwrap();
    let service = QueryService::start(&dataset, config).unwrap();

    let tickets: Vec<SearchTicket> = requests
        .iter()
        .take(n)
        .map(|request| service.submit_nowait(request, D, None).unwrap())
        .collect();
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        assert_eq!(response.batch_requests, n);
        assert_eq!(response.batch_queries, total_queries);
    }
    service.shutdown();
    let stats = service.stats();
    assert_eq!(stats.batches_executed, 1);
    assert!((stats.mean_batch_queries - total_queries as f64).abs() < 1e-9);
}
