//! Tier-1: the device sanitizer must be *silent* on correct code and free
//! when off.
//!
//! Every search method, under both kernel shapes, on the two scenario
//! geometries that survive down-scaling (Merger, Random-dense), runs the
//! full tier-1 workload under [`SanitizerMode::Full`] with **zero**
//! findings — and returns results and deterministic counters byte-identical
//! to a run with the sanitizer off. The mode under test honours the
//! `TDTS_SANITIZER` environment variable (the CI sanitizer job sets
//! `TDTS_SANITIZER=full` explicitly), defaulting to `Full` so a plain
//! `cargo test` exercises the strictest mode too.

use std::sync::Arc;
use std::time::Instant;
use tdts::prelude::*;

const SCALE: f64 = 1.0 / 256.0;

/// The mode the clean matrix runs under: `TDTS_SANITIZER` when set, else
/// `Full` (never `Off` — an `Off` baseline is built per comparison).
fn mode_under_test() -> SanitizerMode {
    match SanitizerMode::from_env() {
        Some(SanitizerMode::Off) | None => SanitizerMode::Full,
        Some(m) => m,
    }
}

fn device_with(shape: KernelShape, mode: SanitizerMode) -> Arc<Device> {
    let config =
        DeviceConfig { kernel_shape: shape, sanitizer: mode, ..DeviceConfig::tesla_c2075() };
    Device::new(config).unwrap()
}

fn methods() -> Vec<Method> {
    vec![
        Method::CpuRTree(RTreeConfig::default()),
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 10 },
            total_scratch: 2_000_000,
            compaction_threshold: 4_096,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins: 50 }),
        Method::GpuBatchedTemporal(BatchedConfig {
            index: TemporalIndexConfig { bins: 50 },
            batch_size: 64,
        }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins: 50,
            subbins: 4,
            sort_by_selector: true,
        }),
    ]
}

/// Deterministic slice of a report: everything except measured wall time
/// and the host-compute seconds derived from it.
fn deterministic_view(r: &SearchReport) -> impl PartialEq + std::fmt::Debug {
    (
        (r.comparisons, r.raw_matches, r.matches, r.redo_rounds),
        (r.fallback_queries, r.divergent_warps, r.totals),
        (
            r.load.max_warp_cycles.to_bits(),
            r.load.warp_cycles.to_bits(),
            r.load.warps,
            r.load.tiles_dispatched,
            r.load.queue_atomics,
        ),
        (r.response.kernel_invocations, r.response.h2d_bytes, r.response.d2h_bytes),
        (
            r.response.get(Phase::KernelExec).to_bits(),
            r.response.get(Phase::HostToDevice).to_bits(),
            r.response.get(Phase::DeviceToHost).to_bits(),
        ),
    )
}

fn run_clean_matrix(kind: ScenarioKind, result_capacity: usize) {
    let scenario = Scenario::new(kind, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    let mode = mode_under_test();

    for shape in [KernelShape::ThreadPerQuery, KernelShape::WarpPerTile] {
        for method in methods() {
            let dev_off = device_with(shape, SanitizerMode::Off);
            let dev_san = device_with(shape, mode);
            let off = SearchEngine::build(&dataset, method, Arc::clone(&dev_off)).unwrap();
            let san = SearchEngine::build(&dataset, method, Arc::clone(&dev_san)).unwrap();

            let (m_off, r_off) = off.search(&queries, 1.5, result_capacity).unwrap();
            let (m_san, r_san) = san.search(&queries, 1.5, result_capacity).unwrap();

            let label = format!("{} / {shape:?} / {kind:?}", method.name());
            assert_eq!(m_off, m_san, "{label}: results differ under sanitizer");
            assert_eq!(
                deterministic_view(&r_off),
                deterministic_view(&r_san),
                "{label}: sanitizer perturbed the cost model"
            );
            assert_eq!(r_san.sanitizer_findings, 0, "{label}: findings on clean code");
            let report = dev_san.sanitizer_report();
            assert!(report.is_clean(), "{label}: sanitizer found defects:\n{report}");
            dev_san.assert_sanitizer_clean();
        }
    }
}

#[test]
fn merger_matrix_is_clean_and_identical() {
    run_clean_matrix(ScenarioKind::S2Merger, 2_000_000);
}

#[test]
fn random_dense_matrix_is_clean_and_identical() {
    run_clean_matrix(ScenarioKind::S3RandomDense, 2_000_000);
}

/// The redo protocol under buffer pressure must stay clean: lost records
/// are acknowledged by the redo rounds, not reported as leaks.
#[test]
fn redo_rounds_under_pressure_are_clean() {
    let scenario = Scenario::new(ScenarioKind::S2Merger, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    for shape in [KernelShape::ThreadPerQuery, KernelShape::WarpPerTile] {
        let dev = device_with(shape, mode_under_test());
        let engine = SearchEngine::build(
            &dataset,
            Method::GpuTemporal(TemporalIndexConfig { bins: 50 }),
            Arc::clone(&dev),
        )
        .unwrap();
        // A capacity small enough to force overflow redo rounds but large
        // enough for one query alone.
        let (matches, report) = engine.search(&queries, 2.0, 600).unwrap();
        assert!(report.redo_rounds > 0, "{shape:?}: expected buffer pressure");
        assert!(!matches.is_empty());
        assert_eq!(report.sanitizer_findings, 0, "{shape:?}: redo flagged");
        dev.assert_sanitizer_clean();
    }
}

/// Batch halving in the streaming method is host-driven redo: the
/// overflow acknowledgement comes from `ResultBuffer::overflowed`, and a
/// pressured run must stay clean.
#[test]
fn batched_halving_under_pressure_is_clean() {
    let scenario = Scenario::new(ScenarioKind::S2Merger, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    let dev = device_with(KernelShape::ThreadPerQuery, mode_under_test());
    let engine = SearchEngine::build(
        &dataset,
        Method::GpuBatchedTemporal(BatchedConfig {
            index: TemporalIndexConfig { bins: 50 },
            batch_size: 256,
        }),
        Arc::clone(&dev),
    )
    .unwrap();
    let (matches, report) = engine.search(&queries, 2.0, 600).unwrap();
    assert!(report.redo_rounds > 0, "expected batch halving");
    assert!(!matches.is_empty());
    assert_eq!(report.sanitizer_findings, 0);
    dev.assert_sanitizer_clean();
}

/// The two-pass count/scatter variant exercises the scatter buffer's
/// exactly-once shadow tracking end to end.
#[test]
fn two_pass_scatter_is_clean() {
    use tdts::index_temporal::GpuTemporalSearch;
    let scenario = Scenario::new(ScenarioKind::S2Merger, SCALE);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();
    let dev = device_with(KernelShape::ThreadPerQuery, mode_under_test());
    let search = GpuTemporalSearch::new(
        Arc::clone(&dev),
        &dataset.store_arc(),
        TemporalIndexConfig { bins: 50 },
    )
    .unwrap();
    let (matches, report) = search.search_two_pass(&queries, 1.5).unwrap();
    assert!(!matches.is_empty());
    assert_eq!(report.sanitizer_findings, 0);
    dev.assert_sanitizer_clean();
}

/// Full-mode overhead stays within the 3× budget the sanitizer promises
/// (EXPERIMENTS.md records measured ratios; this is the guard rail).
#[test]
fn full_mode_overhead_within_budget() {
    let scenario = Scenario::new(ScenarioKind::S2Merger, 1.0 / 64.0);
    let dataset = PreparedDataset::new(scenario.dataset());
    let queries = scenario.queries();

    let time_mode = |mode: SanitizerMode| -> f64 {
        let dev = device_with(KernelShape::ThreadPerQuery, mode);
        let engine = SearchEngine::build(
            &dataset,
            Method::GpuTemporal(TemporalIndexConfig { bins: 50 }),
            dev,
        )
        .unwrap();
        // Warm-up, then the timed pass over several searches to smooth
        // scheduler noise.
        engine.search(&queries, 1.5, 2_000_000).unwrap();
        let start = Instant::now();
        for _ in 0..3 {
            engine.search(&queries, 1.5, 2_000_000).unwrap();
        }
        start.elapsed().as_secs_f64()
    };

    let off = time_mode(SanitizerMode::Off);
    let full = time_mode(SanitizerMode::Full);
    // Guard against division noise on very fast runs: only enforce the
    // ratio once the baseline is measurable.
    let ratio = full / off.max(1e-3);
    assert!(
        ratio <= 3.0,
        "sanitizer overhead {ratio:.2}x exceeds 3x (off {off:.4}s, full {full:.4}s)"
    );
}
