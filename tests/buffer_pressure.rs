//! Integration: buffer-pressure behaviours the paper's evaluation depends
//! on — result-buffer overflow driving kernel re-invocation (incremental
//! processing of `Q`) and candidate-buffer overflow driving the `GPUSpatial`
//! redo protocol — must not change the result set.

use std::sync::Arc;
use tdts::prelude::*;

fn device() -> Arc<Device> {
    Device::new(DeviceConfig::tesla_c2075()).unwrap()
}

fn dense_world() -> (PreparedDataset, SegmentStore) {
    // Small steps relative to the ~7.5-unit cube these particle counts
    // imply, so segment MBBs stay small and the FSG stays meaningful.
    let store =
        RandomDenseConfig { particles: 48, timesteps: 12, step_sigma: 0.3, ..Default::default() }
            .generate();
    let queries = RandomDenseConfig {
        particles: 12,
        timesteps: 12,
        step_sigma: 0.3,
        seed: 4242,
        ..Default::default()
    }
    .generate();
    (PreparedDataset::new(store), queries)
}

#[test]
fn result_overflow_is_transparent_for_all_gpu_methods() {
    let (dataset, queries) = dense_world();
    let d = 30.0; // large d: many matches
    let methods = [
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 6 },
            total_scratch: 2_000_000,
            compaction_threshold: 4_096,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins: 16 }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins: 16,
            subbins: 4,
            sort_by_selector: true,
        }),
    ];
    for method in methods {
        let engine = SearchEngine::build(&dataset, method, device()).unwrap();
        let (unconstrained, r0) = engine.search(&queries, d, 4_000_000).unwrap();
        assert!(
            unconstrained.len() > 50,
            "{}: want real buffer pressure, got {} matches",
            method.name(),
            unconstrained.len()
        );
        assert_eq!(r0.redo_rounds, 0, "{}", method.name());

        // Squeeze the result buffer to a fraction of the result set.
        let (constrained, r1) = engine.search(&queries, d, unconstrained.len() / 5).unwrap();
        assert_eq!(constrained, unconstrained, "{}", method.name());
        assert!(r1.redo_rounds > 0, "{}: expected re-invocations", method.name());
        assert!(
            r1.response.kernel_invocations > r0.response.kernel_invocations,
            "{}",
            method.name()
        );
        // More invocations cost more simulated device time (the §V-E effect
        // that a larger buffer reduces response time). Host-compute time is
        // excluded: it is measured wall time and therefore noisy.
        let device_time =
            |r: &SearchReport| r.response.total() - r.response.get(Phase::HostCompute);
        assert!(
            device_time(&r1) > device_time(&r0),
            "{}: constrained {} vs unconstrained {}",
            method.name(),
            device_time(&r1),
            device_time(&r0)
        );
    }
}

#[test]
fn spatial_scratch_overflow_is_transparent() {
    let (dataset, queries) = dense_world();
    let d = 10.0;
    let roomy = SearchEngine::build(
        &dataset,
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 8 },
            total_scratch: 2_000_000,
            compaction_threshold: 4_096,
        }),
        device(),
    )
    .unwrap();
    let (expect, r0) = roomy.search(&queries, d, 2_000_000).unwrap();
    assert_eq!(r0.redo_rounds, 0);

    let tight = SearchEngine::build(
        &dataset,
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 8 },
            // Enough for a few queries at a time only.
            total_scratch: dataset.store().len() * 2,
            compaction_threshold: 4_096,
        }),
        device(),
    )
    .unwrap();
    let (got, r1) = tight.search(&queries, d, 2_000_000).unwrap();
    assert_eq!(got, expect);
    assert!(r1.redo_rounds > 0, "expected candidate-buffer re-invocations");
}

#[test]
fn device_memory_exhaustion_is_reported() {
    // A device too small for the database.
    let mut cfg = DeviceConfig::tesla_c2075();
    cfg.global_mem_bytes = 1024;
    let small_device = Device::new(cfg).unwrap();
    let (dataset, _) = dense_world();
    let err = SearchEngine::build(
        &dataset,
        Method::GpuTemporal(TemporalIndexConfig { bins: 4 }),
        small_device,
    )
    .err()
    .expect("must fail");
    assert!(matches!(err, TdtsError::Search(SearchError::OutOfDeviceMemory(_))));
}

#[test]
fn impossible_buffers_error_instead_of_looping() {
    let (dataset, queries) = dense_world();
    let engine = SearchEngine::build(
        &dataset,
        Method::GpuTemporal(TemporalIndexConfig { bins: 16 }),
        device(),
    )
    .unwrap();
    let err = engine.search(&queries, 30.0, 0).unwrap_err();
    assert!(matches!(err, TdtsError::Search(SearchError::ResultCapacityTooSmall { .. })));
}
