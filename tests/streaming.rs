//! Tier-1 streaming contract: after ANY interleaved append/expire sequence,
//! every method's search results are byte-identical to a cold rebuild of
//! the same method over the store at the same generation — for both kernel
//! shapes. Also pins the FSG delta-overlay compaction threshold boundary.

use proptest::prelude::*;
use std::sync::Arc;
use tdts::prelude::*;

fn device(shape: KernelShape) -> Arc<Device> {
    let mut config = DeviceConfig::tesla_c2075();
    config.kernel_shape = shape;
    Device::new(config).unwrap()
}

fn all_methods(bins: usize, cells: usize, threshold: usize) -> Vec<Method> {
    vec![
        Method::CpuRTree(RTreeConfig::default()),
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: cells },
            total_scratch: 500_000,
            compaction_threshold: threshold,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins }),
        Method::GpuBatchedTemporal(BatchedConfig {
            index: TemporalIndexConfig { bins },
            batch_size: 5,
        }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins,
            subbins: 3,
            sort_by_selector: true,
        }),
    ]
}

/// A deterministic time-ordered segment: clustered positions so queries at
/// moderate `d` produce non-empty result sets.
fn seg(i: u32, t: f64) -> Segment {
    Segment::new(
        Point3::new((i % 9) as f64, (i % 5) as f64, (i % 3) as f64),
        Point3::new((i % 9) as f64 + 1.0, (i % 5) as f64 + 1.0, (i % 3) as f64 + 0.5),
        t,
        t + 1.2,
        SegId(i),
        TrajId(i % 7),
    )
}

fn base_store(n: usize) -> SegmentStore {
    (0..n as u32).map(|i| seg(i, i as f64 * 0.25)).collect()
}

/// Assert the warm (incrementally maintained) engine answers exactly like a
/// cold rebuild of the same method over the same store state.
fn assert_matches_cold(warm: &SearchEngine, shape: KernelShape, queries: &SegmentStore, d: f64) {
    let cold_set = PreparedDataset::new(warm.store().clone());
    let cold = SearchEngine::build(&cold_set, warm.method(), device(shape)).unwrap();
    let (got, _) = warm.search(queries, d, 500_000).unwrap();
    let (want, _) = cold.search(queries, d, 500_000).unwrap();
    assert_eq!(
        got,
        want,
        "{} ({shape:?}) diverged from cold rebuild at generation {} (d = {d})",
        warm.method().name(),
        warm.generation()
    );
}

#[test]
fn interleaved_append_expire_matches_cold_rebuild() {
    let queries: SegmentStore = (0..12u32).map(|i| seg(100 + i, 3.0 + i as f64 * 0.9)).collect();
    for shape in [KernelShape::ThreadPerQuery, KernelShape::WarpPerTile] {
        // Threshold 3 forces FSG delta compaction mid-sequence, so both the
        // overlay path and the post-compaction path are exercised.
        for method in all_methods(6, 5, 3) {
            let dataset = PreparedDataset::new(base_store(48));
            let mut engine = SearchEngine::build(&dataset, method, device(shape)).unwrap();
            let t0 = 48.0 * 0.25;

            // Tick 1: append past the frontier, then search.
            let tick1: Vec<Segment> =
                (0..4).map(|i| seg(200 + i, t0 + 1.0 + i as f64 * 0.1)).collect();
            engine.ingest(&tick1).unwrap();
            assert_matches_cold(&engine, shape, &queries, 2.5);

            // Tick 2: expire the oldest prefix, then search.
            engine.expire_before(4.0).unwrap();
            assert_matches_cold(&engine, shape, &queries, 2.5);

            // Tick 3: append again (tips GPUSpatial over its compaction
            // threshold), expire again, then search at several distances.
            let tick2: Vec<Segment> =
                (0..3).map(|i| seg(300 + i, t0 + 2.0 + i as f64 * 0.1)).collect();
            engine.ingest(&tick2).unwrap();
            engine.expire_before(7.0).unwrap();
            for d in [0.6, 2.5, 20.0] {
                assert_matches_cold(&engine, shape, &queries, d);
            }
            assert_eq!(engine.generation(), engine.store().generation());
        }
    }
}

#[test]
fn fsg_compaction_threshold_boundary() {
    let threshold = 4;
    let method = Method::GpuSpatial(GpuSpatialConfig {
        fsg: FsgConfig { cells_per_dim: 5 },
        total_scratch: 500_000,
        compaction_threshold: threshold,
    });
    let queries: SegmentStore = (0..8u32).map(|i| seg(100 + i, 5.0 + i as f64)).collect();
    let dataset = PreparedDataset::new(base_store(32));
    let shape = KernelShape::ThreadPerQuery;
    let mut engine = SearchEngine::build(&dataset, method, device(shape)).unwrap();
    assert_eq!(engine.delta_backlog(), 0, "cold build has no delta overlay");

    // Exactly `threshold` appended segments stay in the overlay: compaction
    // fires strictly above the threshold, not at it.
    let at: Vec<Segment> =
        (0..threshold as u32).map(|i| seg(400 + i, 9.0 + i as f64 * 0.1)).collect();
    engine.ingest(&at).unwrap();
    assert_eq!(engine.delta_backlog(), threshold, "at the threshold the delta must survive");
    assert_matches_cold(&engine, shape, &queries, 3.0);

    // One more segment tips it over: the overlay folds into the base grid.
    engine.ingest(&[seg(500, 10.0)]).unwrap();
    assert_eq!(engine.delta_backlog(), 0, "past the threshold the delta must compact");
    assert_matches_cold(&engine, shape, &queries, 3.0);

    // Post-compaction appends start a fresh overlay.
    engine.ingest(&[seg(501, 11.0)]).unwrap();
    assert_eq!(engine.delta_backlog(), 1);
    assert_matches_cold(&engine, shape, &queries, 3.0);
}

/// Time-ordered random base stores for the property test (`t_start`
/// strictly increasing with position, positions in a small box).
fn arb_ordered_store(max_segs: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0, -8.0f64..8.0), 4..=max_segs)
}

fn build_ordered(points: &[(f64, f64, f64)], id0: u32, t0: f64) -> Vec<Segment> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let t = t0 + i as f64 * 0.5;
            Segment::new(
                Point3::new(p.0, p.1, p.2),
                Point3::new(p.0 + 1.0, p.1 + 0.5, p.2 - 0.5),
                t,
                t + 1.0,
                SegId(id0 + i as u32),
                TrajId((id0 + i as u32) % 5),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random interleavings of append / expire / search, every method ×
    /// kernel shape stays byte-identical to rebuild-then-search.
    #[test]
    fn append_then_search_equals_rebuild_then_search(
        base in arb_ordered_store(20),
        tick1 in arb_ordered_store(8),
        tick2 in arb_ordered_store(8),
        qpts in arb_ordered_store(6),
        d in 1.0f64..25.0,
        bins in 2usize..10,
        cells in 2usize..8,
        cut_frac in 0.1f64..0.9,
    ) {
        let base_len = base.len();
        let store: SegmentStore = build_ordered(&base, 0, 0.0).into_iter().collect();
        let t_end = base_len as f64 * 0.5 + 1.0;
        let queries: SegmentStore =
            build_ordered(&qpts, 1_000, t_end * cut_frac).into_iter().collect();
        for shape in [KernelShape::ThreadPerQuery, KernelShape::WarpPerTile] {
            // Threshold 4 so tick sizes straddle the compaction boundary.
            for method in all_methods(bins, cells, 4) {
                let dataset = PreparedDataset::new(store.clone());
                let mut engine = SearchEngine::build(&dataset, method, device(shape)).unwrap();
                engine.ingest(&build_ordered(&tick1, 2_000, t_end + 1.0)).unwrap();
                engine.expire_before(t_end * cut_frac).unwrap();
                engine.ingest(&build_ordered(&tick2, 3_000, t_end + 10.0)).unwrap();

                let cold_set = PreparedDataset::new(engine.store().clone());
                let cold = SearchEngine::build(&cold_set, method, device(shape)).unwrap();
                let (got, _) = engine.search(&queries, d, 500_000).unwrap();
                let (want, _) = cold.search(&queries, d, 500_000).unwrap();
                prop_assert_eq!(
                    &got,
                    &want,
                    "{} ({:?}) diverged after append/expire/append (d = {}, bins = {}, cells = {})",
                    method.name(),
                    shape,
                    d,
                    bins,
                    cells
                );
            }
        }
    }
}
