//! Tier-1: sharded execution is a deployment shape, not an algorithm.
//!
//! Partitioning the entry database across simulated devices must leave
//! result sets *byte-identical* to the single-device oracle — for every
//! method, every kernel shape, both partition strategies, and shard counts
//! 1/2/4/8 — because boundary segments are replicated into every slab they
//! straddle and the merge collapses the duplicate records on full
//! `(query, entry, interval)` keys.

use proptest::prelude::*;
use tdts::prelude::*;

fn methods() -> Vec<Method> {
    vec![
        Method::CpuRTree(RTreeConfig::default()),
        Method::GpuSpatial(GpuSpatialConfig {
            fsg: FsgConfig { cells_per_dim: 10 },
            total_scratch: 500_000,
            compaction_threshold: 4_096,
        }),
        Method::GpuTemporal(TemporalIndexConfig { bins: 40 }),
        Method::GpuBatchedTemporal(BatchedConfig {
            index: TemporalIndexConfig { bins: 40 },
            batch_size: 9,
        }),
        Method::GpuSpatioTemporal(SpatioTemporalIndexConfig {
            bins: 40,
            subbins: 4,
            sort_by_selector: true,
        }),
    ]
}

fn device_config(shape: KernelShape) -> DeviceConfig {
    let mut config = DeviceConfig::tesla_c2075();
    config.kernel_shape = shape;
    config
}

/// Exact equality — every field of every record, bit for bit.
fn assert_byte_identical(got: &[MatchRecord], expect: &[MatchRecord], label: &str) {
    assert_eq!(got.len(), expect.len(), "{label}: result count");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(g.query, e.query, "{label}: record {i} query");
        assert_eq!(g.entry, e.entry, "{label}: record {i} entry");
        assert_eq!(
            g.interval.start.to_bits(),
            e.interval.start.to_bits(),
            "{label}: record {i} interval start"
        );
        assert_eq!(
            g.interval.end.to_bits(),
            e.interval.end.to_bits(),
            "{label}: record {i} interval end"
        );
    }
}

fn check_scenario(store: SegmentStore, queries: SegmentStore, distances: &[f64], label: &str) {
    let dataset = PreparedDataset::new(store);
    for shape in [KernelShape::ThreadPerQuery, KernelShape::WarpPerTile] {
        let config = device_config(shape);
        for &d in distances {
            for method in methods() {
                let oracle_engine =
                    SearchEngine::build(&dataset, method, Device::new(config.clone()).unwrap())
                        .unwrap();
                let (oracle, _) = oracle_engine.search(&queries, d, 2_000_000).unwrap();
                assert!(
                    !oracle.is_empty(),
                    "{label}/{} d={d}: scenario must produce matches to mean anything",
                    method.name()
                );
                for strategy in [PartitionStrategy::Temporal, PartitionStrategy::SpatialGrid] {
                    // Shard counts crossed with dispatch policy and slab
                    // edge placement: broadcast and slab routing must both
                    // reproduce the oracle, on uniform and balanced edges.
                    let shapes = [
                        (1usize, RoutingMode::Slab, SlabMode::Uniform),
                        (2, RoutingMode::Slab, SlabMode::Uniform),
                        (4, RoutingMode::Broadcast, SlabMode::Uniform),
                        (4, RoutingMode::Slab, SlabMode::Uniform),
                        (8, RoutingMode::Slab, SlabMode::Balanced),
                    ];
                    for (shards, routing, slab_mode) in shapes {
                        let engine = SearchEngine::build_sharded(
                            &dataset,
                            method,
                            &config,
                            &ShardedIndexConfig::builder()
                                .shards(shards)
                                .partition(strategy)
                                .routing(routing)
                                .slab_mode(slab_mode)
                                .build()
                                .unwrap(),
                        )
                        .unwrap();
                        let (got, report) = engine.search(&queries, d, 2_000_000).unwrap();
                        assert_byte_identical(
                            &got,
                            &oracle,
                            &format!(
                                "{label}/{} {shape:?} {strategy} shards={shards} \
                                 {routing} {slab_mode} d={d}",
                                method.name()
                            ),
                        );
                        assert_eq!(report.matches, got.len() as u64);
                    }
                }
            }
        }
    }
}

#[test]
fn merger_scenario_sharded_byte_identical() {
    let store = MergerConfig { particles: 60, timesteps: 25, ..Default::default() }.generate();
    let queries =
        MergerConfig { particles: 12, timesteps: 25, seed: 77, ..Default::default() }.generate();
    check_scenario(store, queries, &[1.0, 4.0], "merger");
}

#[test]
fn random_dense_scenario_sharded_byte_identical() {
    let store = RandomDenseConfig { particles: 64, timesteps: 20, ..Default::default() }.generate();
    let queries =
        RandomDenseConfig { particles: 12, timesteps: 20, seed: 55, ..Default::default() }
            .generate();
    check_scenario(store, queries, &[2.0, 12.0], "random-dense");
}

/// Regression: a segment straddling a slab boundary is resident in both
/// slabs and reports its match from each — the merge must collapse the
/// replicas to exactly one record.
#[test]
fn boundary_straddling_segment_dedups_to_one_record() {
    // Two entries over [0, 10]: one inside the first temporal half, one
    // spanning the midpoint (replicated into both slabs at shards=2).
    let mut store = SegmentStore::new();
    store.push(Segment::new(
        Point3::new(0.0, 0.0, 0.0),
        Point3::new(1.0, 0.0, 0.0),
        0.0,
        2.0,
        SegId(0),
        TrajId(0),
    ));
    store.push(Segment::new(
        Point3::new(0.0, 1.0, 0.0),
        Point3::new(1.0, 1.0, 0.0),
        4.0,
        6.0,
        SegId(1),
        TrajId(1),
    ));
    store.push(Segment::new(
        Point3::new(0.0, 2.0, 0.0),
        Point3::new(1.0, 2.0, 0.0),
        8.0,
        10.0,
        SegId(2),
        TrajId(2),
    ));
    let mut queries = SegmentStore::new();
    // One query covering the whole span: it matches all three entries.
    queries.push(Segment::new(
        Point3::new(0.0, 0.5, 0.0),
        Point3::new(1.0, 0.5, 0.0),
        0.0,
        10.0,
        SegId(0),
        TrajId(9),
    ));

    let dataset = PreparedDataset::new(store);
    let stats = dataset.store().stats().unwrap();
    let plan = ShardPlan::new(&stats, 2, PartitionStrategy::Temporal);
    let middle = dataset.store().iter().find(|s| s.t_start == 4.0).unwrap();
    let (lo, hi) = plan.slab_span(middle);
    assert!(lo < hi, "fixture must actually straddle the slab boundary");

    let config = device_config(KernelShape::ThreadPerQuery);
    let method = Method::GpuTemporal(TemporalIndexConfig { bins: 4 });
    let oracle_engine =
        SearchEngine::build(&dataset, method, Device::new(config.clone()).unwrap()).unwrap();
    let (oracle, _) = oracle_engine.search(&queries, 5.0, 10_000).unwrap();
    assert_eq!(oracle.len(), 3);

    let sharded = SearchEngine::build_sharded(
        &dataset,
        method,
        &config,
        &ShardedIndexConfig::builder()
            .shards(2)
            .partition(PartitionStrategy::Temporal)
            .build()
            .unwrap(),
    )
    .unwrap();
    let (got, report) = sharded.search(&queries, 5.0, 10_000).unwrap();
    assert_byte_identical(&got, &oracle, "boundary straddle");
    // The straddler reported from both shards; exactly one replica dropped.
    assert_eq!(report.raw_matches, 4, "replicated entry must match in both shards");
    assert_eq!(report.matches, 3);
}

fn arb_store(max_trajs: usize, max_segs_per: usize) -> impl Strategy<Value = SegmentStore> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (-30.0f64..30.0, -30.0f64..30.0, -30.0f64..30.0),
                2..=max_segs_per + 1,
            ),
            0.0f64..8.0,
        ),
        1..=max_trajs,
    )
    .prop_map(|trajs| {
        let mut store = SegmentStore::new();
        let mut seg = 0u32;
        for (ti, (points, t0)) in trajs.into_iter().enumerate() {
            for (i, w) in points.windows(2).enumerate() {
                store.push(Segment::new(
                    Point3::new(w[0].0, w[0].1, w[0].2),
                    Point3::new(w[1].0, w[1].1, w[1].2),
                    t0 + i as f64,
                    t0 + i as f64 + 1.0,
                    SegId(seg),
                    TrajId(ti as u32),
                ));
                seg += 1;
            }
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any partition of any database merges back to the unsharded oracle.
    #[test]
    fn any_partition_merges_back_to_oracle(
        store in arb_store(6, 5),
        queries in arb_store(3, 4),
        shards in 1usize..=8,
        strategy_sel in 0usize..2,
        routing_sel in 0usize..2,
        slab_sel in 0usize..2,
        d in 0.5f64..25.0,
    ) {
        let strategy = if strategy_sel == 0 {
            PartitionStrategy::Temporal
        } else {
            PartitionStrategy::SpatialGrid
        };
        let routing = if routing_sel == 0 { RoutingMode::Broadcast } else { RoutingMode::Slab };
        let slab_mode = if slab_sel == 0 { SlabMode::Uniform } else { SlabMode::Balanced };
        let dataset = PreparedDataset::new(store);
        let expect = brute_force_search(dataset.store(), &queries, d);
        let engine = SearchEngine::build_sharded(
            &dataset,
            Method::GpuTemporal(TemporalIndexConfig { bins: 7 }),
            &DeviceConfig::tesla_c2075(),
            &ShardedIndexConfig::builder()
                .shards(shards)
                .partition(strategy)
                .routing(routing)
                .slab_mode(slab_mode)
                .build()
                .unwrap(),
        )
        .unwrap();
        let (got, _) = engine.search(&queries, d, 1_000_000).unwrap();
        assert_byte_identical(
            &got,
            &expect,
            &format!("proptest {strategy} {routing} {slab_mode} shards={shards} d={d}"),
        );
    }
}
