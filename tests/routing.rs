//! Tier-1: slab-aware query routing is an optimisation, never an answer
//! change.
//!
//! Routing dispatches each query only to the shards its reach interval
//! touches — a query's own `[t0, t1]` under temporal slabs (a match needs
//! a shared time instant, so no distance slack applies), its spatial
//! extent widened by `d` under spatial-grid slabs. Every test here holds
//! routed results byte-identical to broadcast and to the unsharded
//! oracle, while the dispatch counters prove real work was avoided.

use proptest::prelude::*;
use tdts::prelude::*;

/// Exact equality — every field of every record, bit for bit.
fn assert_byte_identical(got: &[MatchRecord], expect: &[MatchRecord], label: &str) {
    assert_eq!(got.len(), expect.len(), "{label}: result count");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(g.query, e.query, "{label}: record {i} query");
        assert_eq!(g.entry, e.entry, "{label}: record {i} entry");
        assert_eq!(
            g.interval.start.to_bits(),
            e.interval.start.to_bits(),
            "{label}: record {i} interval start"
        );
        assert_eq!(
            g.interval.end.to_bits(),
            e.interval.end.to_bits(),
            "{label}: record {i} interval end"
        );
    }
}

fn sharded(
    dataset: &PreparedDataset,
    shards: usize,
    routing: RoutingMode,
    slab_mode: SlabMode,
) -> SearchEngine {
    SearchEngine::build_sharded(
        dataset,
        Method::GpuTemporal(TemporalIndexConfig { bins: 40 }),
        &DeviceConfig::tesla_c2075(),
        &ShardedIndexConfig::builder()
            .shards(shards)
            .partition(PartitionStrategy::Temporal)
            .routing(routing)
            .slab_mode(slab_mode)
            .build()
            .unwrap(),
    )
    .unwrap()
}

/// The headline behaviour: on a workload whose query segments each span a
/// narrow slice of the time extent, slab routing cuts the dispatched
/// shard-query count by at least 2x versus broadcast, with results
/// byte-identical to both broadcast and the unsharded oracle.
#[test]
fn narrow_extent_queries_cut_dispatch_at_least_2x() {
    let store = MergerConfig { particles: 60, timesteps: 25, ..Default::default() }.generate();
    let queries =
        MergerConfig { particles: 12, timesteps: 25, seed: 77, ..Default::default() }.generate();
    let dataset = PreparedDataset::new(store);
    let shards = 8;

    let oracle_engine = SearchEngine::build(
        &dataset,
        Method::GpuTemporal(TemporalIndexConfig { bins: 40 }),
        Device::new(DeviceConfig::tesla_c2075()).unwrap(),
    )
    .unwrap();

    for d in [1.0, 4.0] {
        let (oracle, _) = oracle_engine.search(&queries, d, 2_000_000).unwrap();
        assert!(!oracle.is_empty(), "d={d}: scenario must produce matches to mean anything");

        let broadcast = sharded(&dataset, shards, RoutingMode::Broadcast, SlabMode::Uniform);
        let (b_matches, b_report) = broadcast.search(&queries, d, 2_000_000).unwrap();
        assert_byte_identical(&b_matches, &oracle, &format!("broadcast d={d}"));
        assert_eq!(
            b_report.routing.shard_queries_routed,
            (queries.len() * shards) as u64,
            "broadcast dispatches every query to every shard"
        );

        for slab_mode in [SlabMode::Uniform, SlabMode::Balanced] {
            let routed = sharded(&dataset, shards, RoutingMode::Slab, slab_mode);
            let (r_matches, r_report) = routed.search(&queries, d, 2_000_000).unwrap();
            assert_byte_identical(&r_matches, &oracle, &format!("routed {slab_mode} d={d}"));
            // Routed + skipped always accounts for the full cross product.
            assert_eq!(
                r_report.routing.shard_queries_routed + r_report.routing.shard_queries_skipped,
                (queries.len() * shards) as u64,
                "{slab_mode} d={d}: dispatch accounting"
            );
            assert!(
                r_report.routing.shard_queries_routed * 2 <= b_report.routing.shard_queries_routed,
                "{slab_mode} d={d}: routed {} shard-queries, less than half of broadcast's {} \
                 expected on narrow-extent queries",
                r_report.routing.shard_queries_routed,
                b_report.routing.shard_queries_routed
            );
        }
    }
}

/// A batch whose every query lies entirely outside the indexed time extent
/// reaches no slab: the search returns empty without probing any shard.
#[test]
fn zero_reach_batch_skips_every_shard() {
    let store = MergerConfig { particles: 30, timesteps: 20, ..Default::default() }.generate();
    let span = store.stats().unwrap().time_span;
    let mut queries = SegmentStore::new();
    for i in 0..6u32 {
        let t0 = span.end + 1000.0 + f64::from(i);
        queries.push(Segment::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            t0,
            t0 + 1.0,
            SegId(i),
            TrajId(i),
        ));
    }
    let dataset = PreparedDataset::new(store);
    let engine = sharded(&dataset, 4, RoutingMode::Slab, SlabMode::Uniform);
    let (matches, report) = engine.search(&queries, 5.0, 100_000).unwrap();
    assert!(matches.is_empty(), "out-of-extent queries cannot match");
    assert_eq!(report.routing.shards_probed, 0, "no shard should be probed");
    assert_eq!(report.routing.shards_skipped, 4);
    assert_eq!(report.routing.shard_queries_skipped, (queries.len() * 4) as u64);
    assert_eq!(report.matches, 0);
}

/// Queries spanning the whole extent reach every slab: routing degenerates
/// to broadcast dispatch, with zero skips and identical results.
#[test]
fn whole_span_queries_probe_every_shard() {
    let store = MergerConfig { particles: 30, timesteps: 20, ..Default::default() }.generate();
    let span = store.stats().unwrap().time_span;
    let mut queries = SegmentStore::new();
    for i in 0..4u32 {
        queries.push(Segment::new(
            Point3::new(f64::from(i), 0.0, 0.0),
            Point3::new(f64::from(i) + 1.0, 0.0, 0.0),
            span.start,
            span.end,
            SegId(i),
            TrajId(i),
        ));
    }
    let dataset = PreparedDataset::new(store);
    let shards = 4;
    let routed = sharded(&dataset, shards, RoutingMode::Slab, SlabMode::Uniform);
    let (r_matches, r_report) = routed.search(&queries, 6.0, 1_000_000).unwrap();
    let broadcast = sharded(&dataset, shards, RoutingMode::Broadcast, SlabMode::Uniform);
    let (b_matches, _) = broadcast.search(&queries, 6.0, 1_000_000).unwrap();
    assert_byte_identical(&r_matches, &b_matches, "whole-span");
    assert_eq!(r_report.routing.shard_queries_skipped, 0);
    assert_eq!(r_report.routing.shards_probed, shards as u64);
    assert_eq!(r_report.routing.shard_queries_routed, (queries.len() * shards) as u64);
}

fn arb_store(max_trajs: usize, max_segs_per: usize) -> impl Strategy<Value = SegmentStore> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (-30.0f64..30.0, -30.0f64..30.0, -30.0f64..30.0),
                2..=max_segs_per + 1,
            ),
            0.0f64..8.0,
        ),
        1..=max_trajs,
    )
    .prop_map(|trajs| {
        let mut store = SegmentStore::new();
        let mut seg = 0u32;
        for (ti, (points, t0)) in trajs.into_iter().enumerate() {
            for (i, w) in points.windows(2).enumerate() {
                store.push(Segment::new(
                    Point3::new(w[0].0, w[0].1, w[0].2),
                    Point3::new(w[1].0, w[1].1, w[1].2),
                    t0 + i as f64,
                    t0 + i as f64 + 1.0,
                    SegId(seg),
                    TrajId(ti as u32),
                ));
                seg += 1;
            }
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any database, query set, shard count, partition strategy, slab
    /// mode, and threshold, slab routing returns exactly broadcast's
    /// records — and never dispatches more shard-queries than broadcast.
    #[test]
    fn routed_is_byte_identical_to_broadcast(
        store in arb_store(6, 5),
        queries in arb_store(3, 4),
        shards in 1usize..=8,
        strategy_sel in 0usize..2,
        slab_sel in 0usize..2,
        d in 0.1f64..25.0,
    ) {
        let strategy = if strategy_sel == 0 {
            PartitionStrategy::Temporal
        } else {
            PartitionStrategy::SpatialGrid
        };
        let slab_mode = if slab_sel == 0 { SlabMode::Uniform } else { SlabMode::Balanced };
        let dataset = PreparedDataset::new(store);
        let build = |routing: RoutingMode| {
            SearchEngine::build_sharded(
                &dataset,
                Method::GpuTemporal(TemporalIndexConfig { bins: 7 }),
                &DeviceConfig::tesla_c2075(),
                &ShardedIndexConfig::builder()
                    .shards(shards)
                    .partition(strategy)
                    .routing(routing)
                    .slab_mode(slab_mode)
                    .build()
                    .unwrap(),
            )
            .unwrap()
        };
        let (b_matches, b_report) = build(RoutingMode::Broadcast)
            .search(&queries, d, 1_000_000)
            .unwrap();
        let (r_matches, r_report) = build(RoutingMode::Slab)
            .search(&queries, d, 1_000_000)
            .unwrap();
        assert_byte_identical(
            &r_matches,
            &b_matches,
            &format!("proptest {strategy} {slab_mode} shards={shards} d={d}"),
        );
        prop_assert!(
            r_report.routing.shard_queries_routed <= b_report.routing.shard_queries_routed
        );
        prop_assert_eq!(
            r_report.routing.shard_queries_routed + r_report.routing.shard_queries_skipped,
            (queries.len() * shards) as u64
        );
    }
}
